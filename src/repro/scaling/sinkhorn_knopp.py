"""Parallel Sinkhorn–Knopp scaling (the paper's Algorithm 1, ``ScaleSK``).

Each iteration balances the columns, then the rows:

.. code-block:: text

    for j in columns (parallel):  dc[j] = 1 / sum_{i in A*j} dr[i]
    for i in rows    (parallel):  dr[i] = 1 / sum_{j in Ai*} dc[j]

(the matrix entries are 1, so the sums need only the opposite scaling
vector).  After a row sweep the scaled row sums are exactly one; the
convergence error is the maximal deviation of the scaled *column* sums
from one, measured at the top of the next iteration.

Empty rows/columns keep their factor at 1 and are excluded from the error
— see Section 3.3 of the paper for why heavily non-converged scalings are
still useful (with column sums ≥ α the OneSided guarantee degrades
gracefully to ``1 - e^{-α}``).

``iterations=0`` is meaningful and used throughout the paper's tables: it
leaves ``dr = dc = 1``, which makes the heuristics pick neighbours
uniformly at random (the "no guarantee" baseline of Figure 5).

Degradation ladder
------------------

Sinkhorn–Knopp provably converges only on matrices with total support;
anywhere else a tolerance loop just burns its full ``max_iterations``
budget.  The support-aware guard detects structurally hopeless inputs —
empty rows/columns cheaply, lack of total support via the
Dulmage–Mendelsohn machinery behind a size cutoff — and falls down a
declared ladder instead of thrashing:

1. ``"full"`` — the requested computation (default rung).
2. ``"capped"`` — deficiency detected: the iteration budget is capped at
   ``capped_iterations`` and a :class:`~repro.errors.ConvergenceWarning`
   carrying the achieved column-sum error is emitted; the Section 3.3
   relaxed guarantee still applies to the heuristics.
3. ``"uniform"`` — degenerate input (no nonzeros) or a non-finite
   scaling: fall back to pattern-uniform ``dr = dc = 1``, which always
   yields a valid (if guarantee-free) choice distribution.

The rung used is recorded in :attr:`ScalingResult.rung`, so
``OneSidedMatch``/``TwoSidedMatch`` can report the best attainable
guarantee instead of failing (see ``docs/resilience.md``).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro import telemetry as _tm
from repro._typing import FloatArray
from repro.errors import ConvergenceWarning, ScalingError
from repro.graph.csr import BipartiteGraph
from repro.parallel.backends import Backend, get_backend
from repro.parallel.kernels import _reciprocal_or_one, run_kernel
from repro.scaling.convergence import column_sum_error
from repro.scaling.result import ScalingResult

__all__ = [
    "scale_sinkhorn_knopp",
    "sinkhorn_knopp_work_profile",
    "initial_factors",
]


def initial_factors(
    graph: BipartiteGraph,
    initial: "tuple[FloatArray, FloatArray] | ScalingResult | None",
) -> tuple[FloatArray, FloatArray, bool]:
    """Resolve the ``initial=`` warm-start argument into ``(dr, dc, warm)``.

    Accepts a ``(dr, dc)`` pair or a whole :class:`ScalingResult` (its
    vectors are reused); ``None`` yields the cold all-ones start.  The
    returned arrays are fresh copies sized for *graph*, validated to be
    finite and strictly positive — a poisoned warm start would silently
    corrupt every downstream choice probability.
    """
    if initial is None:
        return (
            np.ones(graph.nrows, dtype=np.float64),
            np.ones(graph.ncols, dtype=np.float64),
            False,
        )
    if isinstance(initial, ScalingResult):
        dr0, dc0 = initial.dr, initial.dc
    else:
        try:
            dr0, dc0 = initial
        except (TypeError, ValueError):
            raise ScalingError(
                "initial must be a (dr, dc) pair or a ScalingResult, "
                f"got {type(initial).__name__}"
            ) from None
    dr = np.array(dr0, dtype=np.float64, copy=True).ravel()
    dc = np.array(dc0, dtype=np.float64, copy=True).ravel()
    if dr.shape != (graph.nrows,) or dc.shape != (graph.ncols,):
        raise ScalingError(
            f"initial factors must have shapes ({graph.nrows},) and "
            f"({graph.ncols},), got {dr.shape} and {dc.shape}"
        )
    if not (np.isfinite(dr).all() and np.isfinite(dc).all()):
        raise ScalingError("initial factors must be finite")
    if (dr <= 0).any() or (dc <= 0).any():
        raise ScalingError("initial factors must be strictly positive")
    return dr, dc, True


def _lacks_total_support(
    graph: BipartiteGraph, support_check_cutoff: int
) -> bool:
    """Whether SK provably cannot converge on *graph*'s pattern.

    Empty rows/columns are an O(n) necessary check; the full total-support
    test (every edge on some perfect matching) needs a maximum matching,
    so it only runs on square matrices up to *support_check_cutoff*
    nonzeros.  Returns ``False`` when undecided — the ladder only demotes
    on proof.
    """
    if (np.diff(graph.row_ptr) == 0).any() or (
        np.diff(graph.col_ptr) == 0
    ).any():
        return True
    if graph.nrows != graph.ncols:
        # Rectangular patterns have no total support in the square sense;
        # the paper scales them with the rectangular variant of SK, whose
        # stationary point is r-by-c stochastic, so we do not demote here.
        return False
    if graph.nnz > support_check_cutoff:
        return False
    from repro.graph.dm import dulmage_mendelsohn

    return not dulmage_mendelsohn(graph).total_support


def scale_sinkhorn_knopp(
    graph: BipartiteGraph,
    iterations: int | None = None,
    *,
    tolerance: float | None = None,
    max_iterations: int = 1000,
    backend: Backend | str | None = None,
    initial: tuple[FloatArray, FloatArray] | ScalingResult | None = None,
    track_history: bool = False,
    degradation: bool = True,
    capped_iterations: int = 25,
    support_check_cutoff: int = 10_000,
) -> ScalingResult:
    """Scale *graph*'s adjacency pattern toward doubly stochastic form.

    Parameters
    ----------
    graph:
        The (0,1) matrix as a :class:`~repro.graph.BipartiteGraph`.
    iterations:
        Run exactly this many column+row sweeps.  Mutually exclusive with
        *tolerance*; the paper's experiments use fixed small counts
        (0, 1, 5, 10).
    tolerance:
        Iterate until the column-sum error drops below this value (or
        *max_iterations* is hit).
    backend:
        Execution backend for the segment reductions (see
        :func:`repro.parallel.get_backend`); serial by default.
    initial:
        Warm-start scaling factors: a ``(dr, dc)`` pair or a previous
        :class:`ScalingResult` (its vectors are reused).  Starting from
        a near-fixed-point — e.g. the converged factors of a graph that
        has since received a small edit batch — reaches tolerance in a
        few sweeps instead of a cold run's full budget; the sweeps not
        spent are published as the ``scaling.warm_sweeps_saved``
        counter.  Factors must be finite, strictly positive, and sized
        for *graph* (:class:`~repro.errors.ScalingError` otherwise).
    track_history:
        Record the error after every iteration in the result.
    degradation:
        Enable the support-aware degradation ladder (see the module
        docstring).  With ``False`` the requested budget is always run
        and ``rung`` stays ``"full"``.
    capped_iterations:
        Iteration budget on the ``"capped"`` rung.
    support_check_cutoff:
        Largest nonzero count at which the full total-support test (a
        maximum-matching computation) is attempted; above it only the
        O(n) empty-row/column check runs.

    Returns
    -------
    ScalingResult
        Scaling vectors, final error, iteration count, convergence flag,
        and the degradation-ladder rung used.
    """
    if iterations is not None and tolerance is not None:
        raise ScalingError("pass either iterations or tolerance, not both")
    if iterations is None and tolerance is None:
        iterations = 10  # the paper's default working budget
    if iterations is not None and iterations < 0:
        raise ScalingError(f"iterations must be >= 0, got {iterations}")
    if tolerance is not None and tolerance <= 0:
        raise ScalingError(f"tolerance must be positive, got {tolerance}")

    be = get_backend(backend)

    dr, dc, warm = initial_factors(graph, initial)
    # Double buffer for the fused sweep: each fused call measures the
    # error of the *current* dc and writes the next column factors here;
    # they are committed (by swap) only if the iteration proceeds.
    dc_next = np.empty_like(dc)
    history: list[float] = []

    def col_sweep_with_error() -> float:
        """One fused column pass: the convergence error of the current
        ``(dr, dc)`` and, as a side effect, the next ``dc`` in
        ``dc_next``.  One gather+reduce serves both, which cuts a full
        SK iteration from three O(nnz) passes to two."""
        errs = run_kernel(
            "sk_sweep_err", graph.ncols,
            {
                "ptr": graph.col_ptr, "ind": graph.row_ind,
                "opp": dr, "mine": dc, "out": dc_next,
            },
            backend=be,
        )
        # np.max propagates NaN (unlike builtin max), which the
        # non-finite fallback below relies on.
        return float(np.max(errs)) if errs else 0.0

    def row_sweep() -> None:
        run_kernel(
            "sk_sweep", graph.nrows,
            {
                "ptr": graph.row_ptr, "ind": graph.col_ind,
                "opp": dc, "out": dr,
            },
            backend=be,
        )

    limit = iterations if iterations is not None else max_iterations
    requested_limit = limit
    rung = "full"
    if degradation:
        if graph.nnz == 0:
            # Nothing to balance: pattern-uniform is the exact answer.
            rung, limit = "uniform", 0
        elif _lacks_total_support(
            graph,
            # The maximum-matching test is only worth its cost when it
            # can actually save sweeps (or a doomed tolerance loop).
            support_check_cutoff if limit > capped_iterations else 0,
        ):
            rung = "capped"
            limit = min(limit, capped_iterations)

    done = 0
    converged = False
    with _tm.span(
        "scaling.sinkhorn_knopp",
        nrows=graph.nrows, ncols=graph.ncols, nnz=graph.nnz,
    ) as sp:
        error = col_sweep_with_error()
        for _ in range(limit):
            if tolerance is not None and error <= tolerance:
                converged = True
                break
            dc, dc_next = dc_next, dc  # commit the fused column sweep
            row_sweep()
            done += 1
            error = col_sweep_with_error()
            if track_history:
                history.append(error)
            if _tm.enabled():
                _tm.incr("scaling.sk.sweeps")
                _tm.event("scaling.sk.sweep", iteration=done, error=error)
        if tolerance is not None and error <= tolerance:
            converged = True
        if not (
            np.isfinite(error)
            and np.isfinite(dr).all()
            and np.isfinite(dc).all()
        ):
            # Last rung of the ladder: a non-finite scaling would poison
            # the choice probabilities, so fall back to pattern-uniform.
            rung = "uniform"
            dr[:] = 1.0
            dc[:] = 1.0
            converged = False
            error = column_sum_error(graph, dr, dc)
        if rung == "capped" and not converged and (
            limit < requested_limit or tolerance is not None
        ):
            warnings.warn(
                ConvergenceWarning(
                    f"matrix lacks total support; Sinkhorn-Knopp stopped "
                    f"on the '{rung}' rung after {done} iteration(s) with "
                    f"column-sum error {error:.6g}",
                    achieved_error=error,
                    rung=rung,
                ),
                stacklevel=2,
            )
        if rung != "full":
            _tm.incr("scaling.sk.degraded")
            _tm.event("scaling.sk.degraded", rung=rung, error=error)
        if warm and _tm.enabled():
            _tm.incr("scaling.sk.warm_starts")
            _tm.set_gauge("scaling.warm_iterations", done)
            if converged:
                # Sweeps the warm start left unspent from the budget a
                # cold tolerance run was allowed to burn.
                _tm.incr("scaling.warm_sweeps_saved", max(0, limit - done))
        _tm.set_gauge("scaling.sk.error", error)
        sp.set(
            iterations=done, error=error, converged=converged, rung=rung,
            warm=warm,
        )

    return ScalingResult(
        dr=dr,
        dc=dc,
        error=error,
        iterations=done,
        converged=converged,
        history=tuple(history),
        rung=rung,
        warm_started=warm,
    )


def sinkhorn_knopp_work_profile(graph: BipartiteGraph) -> FloatArray:
    """Per-row work units of one ScaleSK iteration, for the machine model.

    A row costs its degree (the gather+reduce over its nonzeros) plus a
    constant for the pointer arithmetic and the reciprocal; the column
    sweep has the mirrored profile, so one iteration's total work profile
    is the sum of both sides mapped onto a common "loop item" axis.  The
    model schedules the row sweep (the longer of the two on skewed
    matrices) — scheduling both sweeps separately changes speedups by <2%.
    """
    return graph.row_degrees().astype(np.float64) + 4.0
