"""Parallel Sinkhorn–Knopp scaling (the paper's Algorithm 1, ``ScaleSK``).

Each iteration balances the columns, then the rows:

.. code-block:: text

    for j in columns (parallel):  dc[j] = 1 / sum_{i in A*j} dr[i]
    for i in rows    (parallel):  dr[i] = 1 / sum_{j in Ai*} dc[j]

(the matrix entries are 1, so the sums need only the opposite scaling
vector).  After a row sweep the scaled row sums are exactly one; the
convergence error is the maximal deviation of the scaled *column* sums
from one, measured at the top of the next iteration.

Empty rows/columns keep their factor at 1 and are excluded from the error
— see Section 3.3 of the paper for why heavily non-converged scalings are
still useful (with column sums ≥ α the OneSided guarantee degrades
gracefully to ``1 - e^{-α}``).

``iterations=0`` is meaningful and used throughout the paper's tables: it
leaves ``dr = dc = 1``, which makes the heuristics pick neighbours
uniformly at random (the "no guarantee" baseline of Figure 5).
"""

from __future__ import annotations

import numpy as np

from repro import telemetry as _tm
from repro._typing import FloatArray
from repro.errors import ScalingError
from repro.graph.csr import BipartiteGraph
from repro.parallel.backends import Backend, SerialBackend, get_backend
from repro.parallel.reduction import segment_sums, segment_sums_parallel
from repro.scaling.convergence import column_sum_error
from repro.scaling.result import ScalingResult

__all__ = ["scale_sinkhorn_knopp", "sinkhorn_knopp_work_profile"]


def _reciprocal_or_one(sums: FloatArray) -> FloatArray:
    """``1/sums`` with empty (zero-sum) lines pinned to factor 1."""
    out = np.ones_like(sums)
    np.divide(1.0, sums, out=out, where=sums > 0.0)
    return out


def scale_sinkhorn_knopp(
    graph: BipartiteGraph,
    iterations: int | None = None,
    *,
    tolerance: float | None = None,
    max_iterations: int = 1000,
    backend: Backend | str | None = None,
    track_history: bool = False,
) -> ScalingResult:
    """Scale *graph*'s adjacency pattern toward doubly stochastic form.

    Parameters
    ----------
    graph:
        The (0,1) matrix as a :class:`~repro.graph.BipartiteGraph`.
    iterations:
        Run exactly this many column+row sweeps.  Mutually exclusive with
        *tolerance*; the paper's experiments use fixed small counts
        (0, 1, 5, 10).
    tolerance:
        Iterate until the column-sum error drops below this value (or
        *max_iterations* is hit).
    backend:
        Execution backend for the segment reductions (see
        :func:`repro.parallel.get_backend`); serial by default.
    track_history:
        Record the error after every iteration in the result.

    Returns
    -------
    ScalingResult
        Scaling vectors, final error, iteration count, convergence flag.
    """
    if iterations is not None and tolerance is not None:
        raise ScalingError("pass either iterations or tolerance, not both")
    if iterations is None and tolerance is None:
        iterations = 10  # the paper's default working budget
    if iterations is not None and iterations < 0:
        raise ScalingError(f"iterations must be >= 0, got {iterations}")
    if tolerance is not None and tolerance <= 0:
        raise ScalingError(f"tolerance must be positive, got {tolerance}")

    be = get_backend(backend)
    use_parallel = not isinstance(be, SerialBackend)

    dr = np.ones(graph.nrows, dtype=np.float64)
    dc = np.ones(graph.ncols, dtype=np.float64)
    history: list[float] = []

    def col_sweep() -> None:
        gathered = dr[graph.row_ind]
        if use_parallel:
            sums = segment_sums_parallel(gathered, graph.col_ptr, be)
        else:
            sums = segment_sums(gathered, graph.col_ptr)
        dc[:] = _reciprocal_or_one(sums)

    def row_sweep() -> None:
        gathered = dc[graph.col_ind]
        if use_parallel:
            sums = segment_sums_parallel(gathered, graph.row_ptr, be)
        else:
            sums = segment_sums(gathered, graph.row_ptr)
        dr[:] = _reciprocal_or_one(sums)

    limit = iterations if iterations is not None else max_iterations
    done = 0
    converged = False
    with _tm.span(
        "scaling.sinkhorn_knopp",
        nrows=graph.nrows, ncols=graph.ncols, nnz=graph.nnz,
    ) as sp:
        error = column_sum_error(graph, dr, dc, be if use_parallel else None)
        for _ in range(limit):
            if tolerance is not None and error <= tolerance:
                converged = True
                break
            col_sweep()
            row_sweep()
            done += 1
            error = column_sum_error(
                graph, dr, dc, be if use_parallel else None
            )
            if track_history:
                history.append(error)
            if _tm.enabled():
                _tm.incr("scaling.sk.sweeps")
                _tm.event("scaling.sk.sweep", iteration=done, error=error)
        if tolerance is not None and error <= tolerance:
            converged = True
        _tm.set_gauge("scaling.sk.error", error)
        sp.set(iterations=done, error=error, converged=converged)

    return ScalingResult(
        dr=dr,
        dc=dc,
        error=error,
        iterations=done,
        converged=converged,
        history=tuple(history),
    )


def sinkhorn_knopp_work_profile(graph: BipartiteGraph) -> FloatArray:
    """Per-row work units of one ScaleSK iteration, for the machine model.

    A row costs its degree (the gather+reduce over its nonzeros) plus a
    constant for the pointer arithmetic and the reciprocal; the column
    sweep has the mirrored profile, so one iteration's total work profile
    is the sum of both sides mapped onto a common "loop item" axis.  The
    model schedules the row sweep (the longer of the two on skewed
    matrices) — scheduling both sweeps separately changes speedups by <2%.
    """
    return graph.row_degrees().astype(np.float64) + 4.0
