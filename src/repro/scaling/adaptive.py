"""Quality-driven scaling budgets (the Section 3.3 relaxation, inverted).

The paper's first relaxation: if the scaled column sums are all at least
``α``, OneSidedMatch still guarantees ``n(1 − e^{−α})`` in expectation.
Read as a *control knob*: to promise a target quality ``q``, it suffices
to iterate the scaling until every (nonempty) column sum reaches
``α(q) = −ln(1 − q)`` — no convergence needed.

* :func:`alpha_for_quality` — the inverse map ``q ↦ α``;
* :func:`scale_for_quality` — run Sinkhorn–Knopp until the minimum
  column sum clears ``α(q)`` (or a budget runs out), returning the
  scaling plus the guarantee it actually certifies.

This is how a downstream user should pick the iteration count instead of
hard-coding the paper's 5 or 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import ONE_SIDED_GUARANTEE, one_sided_guarantee_relaxed
from repro.errors import ScalingError
from repro.graph.csr import BipartiteGraph
from repro.parallel.reduction import segment_sums
from repro.scaling.result import ScalingResult

__all__ = ["alpha_for_quality", "scale_for_quality", "QualityScaling"]


def alpha_for_quality(quality: float) -> float:
    """Minimum column-sum level α certifying expected quality *quality*.

    Inverse of ``q = 1 − e^{−α}``; only targets below the converged
    guarantee ``1 − 1/e`` are achievable this way.

    >>> round(alpha_for_quality(0.6015), 2)
    0.92
    """
    if not 0.0 <= quality < ONE_SIDED_GUARANTEE:
        raise ScalingError(
            f"target quality must be in [0, {ONE_SIDED_GUARANTEE:.4f}) — "
            f"the Theorem 1 ceiling — got {quality}"
        )
    return -math.log(1.0 - quality)


@dataclass(frozen=True)
class QualityScaling:
    """Result of :func:`scale_for_quality`."""

    scaling: ScalingResult
    #: Minimum scaled column sum achieved (over nonempty columns).
    min_column_sum: float
    #: The expected-quality level this scaling certifies:
    #: ``1 − e^{−min_column_sum}`` (capped at the Theorem 1 constant).
    certified_quality: float
    #: Whether the requested target was met within the budget.
    target_met: bool


def _min_column_sum(graph: BipartiteGraph, dr, dc) -> float:
    """Minimum column sum of the *row-normalised pick probabilities*.

    Theorem 1's relaxed form needs ``Σ_i p_i(j) >= α`` where ``p_i(j)``
    is row i's probability of picking column j — i.e. the column sums of
    the row-stochastic matrix, not of the raw scaled values (those two
    agree only at convergence).
    """
    dr = np.asarray(dr, dtype=np.float64)
    dc = np.asarray(dc, dtype=np.float64)
    row_tot = segment_sums(dc[graph.col_ind], graph.row_ptr)
    # Work in CSC order directly (the mirror arrays are already grouped
    # by column), avoiding a per-call argsort over the edges.
    numer = np.repeat(dc, np.diff(graph.col_ptr))
    denom = row_tot[graph.row_ind]
    probs = np.zeros_like(numer)
    np.divide(numer, denom, out=probs, where=denom > 0)
    sums = segment_sums(probs, graph.col_ptr)
    nonempty = graph.col_degrees() > 0
    if not nonempty.any():
        return 0.0
    return float(sums[nonempty].min())


def scale_for_quality(
    graph: BipartiteGraph,
    target_quality: float,
    *,
    max_iterations: int = 500,
    initial: "tuple | ScalingResult | None" = None,
) -> QualityScaling:
    """Iterate Sinkhorn–Knopp until the target quality is certified.

    The stopping rule watches the **minimum** scaled column sum (not the
    maximum error): the relaxed Theorem 1 needs every column to carry at
    least α of probability mass.  Matrices without support may never get
    there; the budget then expires and ``target_met`` is ``False`` with
    the strongest certificate actually reached.

    *initial* warm-starts the sweep from previous ``(dr, dc)`` factors
    (or a :class:`ScalingResult`); when the factors already certify the
    target — the common case after a small edit batch — the loop exits
    after the initial measurement, with zero sweeps.
    """
    alpha = alpha_for_quality(target_quality)
    # The sweep loop is re-implemented here (rather than calling
    # scale_sinkhorn_knopp repeatedly) because the stopping rule watches
    # the min column sum, which the fixed-budget kernel does not expose,
    # and restarting it each iteration would redo all previous sweeps.
    from repro.scaling.sinkhorn_knopp import (
        _reciprocal_or_one,
        initial_factors,
    )

    dr, dc, warm = initial_factors(graph, initial)
    done = 0
    current = _min_column_sum(graph, dr, dc)
    while current < alpha and done < max_iterations:
        csum = segment_sums(dr[graph.row_ind], graph.col_ptr)
        dc = _reciprocal_or_one(csum)
        rsum = segment_sums(dc[graph.col_ind], graph.row_ptr)
        dr = _reciprocal_or_one(rsum)
        done += 1
        current = _min_column_sum(graph, dr, dc)

    from repro.scaling.convergence import column_sum_error

    if warm:
        from repro import telemetry as _tm

        if _tm.enabled():
            _tm.incr("scaling.sk.warm_starts")
            _tm.set_gauge("scaling.warm_iterations", done)

    scaling = ScalingResult(
        dr=dr,
        dc=dc,
        error=column_sum_error(graph, dr, dc),
        iterations=done,
        converged=current >= alpha,
        warm_started=warm,
    )
    certified = min(
        one_sided_guarantee_relaxed(min(current, 1.0)), ONE_SIDED_GUARANTEE
    )
    return QualityScaling(
        scaling=scaling,
        min_column_sum=current,
        certified_quality=certified,
        target_met=current >= alpha,
    )
