"""Structure detection from scaling behaviour (Section 3.3 as a tool).

The paper observes that on matrices without total support, Sinkhorn–
Knopp drives the scaled values of the DM "*"-block entries — the entries
that lie on **no** maximum matching — toward zero, while entries inside
the diagonal blocks equilibrate.  Read backwards, that is a *detector*:
iterate the scaling, then threshold the scaled values to estimate which
entries are matchable, without ever running a matching algorithm.

This module packages that detector and its evaluation:

* :func:`estimate_matchable_edges` — boolean per-edge estimate;
* :func:`matchability_report` — precision/recall of the estimate against
  the exact Dulmage–Mendelsohn ground truth (used by tests and the
  ``rank_deficient_analysis`` example).

The estimate converges to the truth as iterations grow (the S-block case
is classical Sinkhorn–Knopp theory); with few iterations it is a cheap,
parallelisable approximation — in the spirit of the paper, which never
needs the exact DM structure, only the probability mass to move off the
"*" blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import BoolArray
from repro.graph.csr import BipartiteGraph
from repro.parallel.reduction import segment_sums
from repro.scaling.result import ScalingResult
from repro.scaling.sinkhorn_knopp import scale_sinkhorn_knopp

__all__ = [
    "estimate_matchable_edges",
    "MatchabilityReport",
    "matchability_report",
]


def estimate_matchable_edges(
    graph: BipartiteGraph,
    scaling: ScalingResult | None = None,
    *,
    iterations: int = 50,
    threshold: float = 0.1,
) -> BoolArray:
    """Estimate which edges can lie on a maximum matching.

    An edge is flagged matchable when its scaled value is at least
    *threshold* times its row's mean scaled value (row-relative
    thresholding keeps the detector insensitive to the absolute scale of
    unbalanced rows in the H/V blocks).

    Parameters
    ----------
    graph:
        The pattern.
    scaling:
        A precomputed scaling; by default Sinkhorn–Knopp is run for
        *iterations* sweeps (more iterations sharpen the separation).
    threshold:
        Relative cut-off in (0, 1); 0.1 is robust across the test
        families.
    """
    if scaling is None:
        # The detector *wants* deep scaling on support-deficient patterns:
        # the decay of unmatchable entries over many sweeps is exactly the
        # signal being thresholded, so the degradation ladder (which caps
        # iterations on such matrices) must not engage here.
        scaling = scale_sinkhorn_knopp(graph, iterations, degradation=False)
    values = graph.scaled_values(scaling.dr, scaling.dc)
    row_means = np.zeros(graph.nrows, dtype=np.float64)
    sums = segment_sums(values, graph.row_ptr)
    degs = graph.row_degrees()
    nonempty = degs > 0
    row_means[nonempty] = sums[nonempty] / degs[nonempty]
    cutoff = threshold * row_means[graph.row_of_edge()]
    return values >= cutoff


@dataclass(frozen=True)
class MatchabilityReport:
    """Confusion-matrix summary of the scaling-based detector."""

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @property
    def precision(self) -> float:
        denom = self.true_positive + self.false_positive
        return self.true_positive / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positive + self.false_negative
        return self.true_positive / denom if denom else 1.0

    @property
    def accuracy(self) -> float:
        total = (
            self.true_positive
            + self.false_positive
            + self.true_negative
            + self.false_negative
        )
        return (self.true_positive + self.true_negative) / total if total else 1.0


def matchability_report(
    graph: BipartiteGraph,
    *,
    iterations: int = 50,
    threshold: float = 0.1,
) -> MatchabilityReport:
    """Evaluate the detector against the exact DM ground truth."""
    from repro.graph.dm import dulmage_mendelsohn

    estimate = estimate_matchable_edges(
        graph, iterations=iterations, threshold=threshold
    )
    truth = dulmage_mendelsohn(graph).matchable_edges
    return MatchabilityReport(
        true_positive=int(np.count_nonzero(estimate & truth)),
        false_positive=int(np.count_nonzero(estimate & ~truth)),
        true_negative=int(np.count_nonzero(~estimate & ~truth)),
        false_negative=int(np.count_nonzero(~estimate & truth)),
    )
