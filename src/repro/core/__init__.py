"""The paper's contributions: OneSidedMatch, TwoSidedMatch, KarpSipserMT.

Quick start::

    from repro.graph import sprand
    from repro.core import one_sided_match, two_sided_match

    g = sprand(10_000, 4.0, seed=0)
    one = one_sided_match(g, iterations=5, seed=1)
    two = two_sided_match(g, iterations=5, seed=1)
    print(one.matching.cardinality, two.matching.cardinality)
"""

from repro.core.choice import scaled_row_choices, scaled_col_choices
from repro.core.onesided import one_sided_match, OneSidedResult
from repro.core.twosided import two_sided_match, TwoSidedResult
from repro.core.karp_sipser_mt import (
    karp_sipser_mt,
    karp_sipser_mt_vectorized,
    karp_sipser_mt_simulated,
    karp_sipser_mt_threaded,
    choice_graph,
    KarpSipserMTStats,
)
from repro.core.oneout import (
    sample_uniform_one_out,
    one_out_graph,
    one_out_max_matching_size,
)
from repro.core.quality import (
    matching_quality,
    one_sided_bound,
    two_sided_bound,
)
from repro.core.analysis import (
    expected_one_sided_cardinality,
    one_sided_lower_bound,
    one_sided_miss_probabilities,
)
from repro.core.ensemble import best_of, EnsembleResult
from repro.core.undirected import (
    UndirectedMatching,
    one_out_match_undirected,
    one_sided_match_undirected,
    validate_undirected_matching,
)

__all__ = [
    "scaled_row_choices",
    "scaled_col_choices",
    "one_sided_match",
    "OneSidedResult",
    "two_sided_match",
    "TwoSidedResult",
    "karp_sipser_mt",
    "karp_sipser_mt_vectorized",
    "karp_sipser_mt_simulated",
    "karp_sipser_mt_threaded",
    "choice_graph",
    "KarpSipserMTStats",
    "sample_uniform_one_out",
    "one_out_graph",
    "one_out_max_matching_size",
    "matching_quality",
    "one_sided_bound",
    "two_sided_bound",
    "expected_one_sided_cardinality",
    "one_sided_lower_bound",
    "one_sided_miss_probabilities",
    "best_of",
    "EnsembleResult",
    "UndirectedMatching",
    "one_sided_match_undirected",
    "one_out_match_undirected",
    "validate_undirected_matching",
]
