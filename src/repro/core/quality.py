"""Matching-quality measurement and the paper's guarantee constants.

Quality is ``|M| / sprank(A)`` — the heuristic's cardinality over the
maximum (Tables 1, 2 and Figure 5 all report this ratio).
"""

from __future__ import annotations

from repro.constants import ONE_SIDED_GUARANTEE, TWO_SIDED_GUARANTEE
from repro.constants import one_sided_guarantee_relaxed
from repro.graph.csr import BipartiteGraph
from repro.matching.matching import Matching

__all__ = [
    "matching_quality",
    "one_sided_bound",
    "two_sided_bound",
]


def matching_quality(
    graph: BipartiteGraph,
    matching: Matching,
    maximum_cardinality: int | None = None,
) -> float:
    """``|matching| / sprank(graph)``.

    Pass *maximum_cardinality* when the sprank is already known (e.g.
    computed once per instance across a table sweep); otherwise it is
    computed with Hopcroft–Karp.
    """
    if maximum_cardinality is None:
        from repro.matching.exact.sprank import sprank

        maximum_cardinality = sprank(graph)
    return matching.quality(maximum_cardinality)


def one_sided_bound(alpha: float = 1.0) -> float:
    """Theorem 1's guarantee for OneSidedMatch.

    With converged scaling (``alpha = 1``) this is ``1 - 1/e ≈ 0.632``;
    with truncated scaling whose column sums are ≥ *alpha* it degrades
    gracefully to ``1 - e^{-alpha}`` (Section 3.3).
    """
    if alpha >= 1.0:
        return ONE_SIDED_GUARANTEE
    return one_sided_guarantee_relaxed(alpha)


def two_sided_bound() -> float:
    """Conjecture 1's bound for TwoSidedMatch: ``2(1-ρ) ≈ 0.866``."""
    return TWO_SIDED_GUARANTEE
