"""Ensemble runs: best-of-k for the randomized heuristics.

The paper's tables report the *minimum* of 10 runs because they study
worst-case behaviour; a user wants the opposite — run the cheap
randomized heuristic k times and keep the best matching.  Because one
run is linear-time and runs are independent, this is embarrassingly
parallel and sharply concentrates the quality (the tables' tiny
variances are exactly why small k already helps).

The scaling is computed once and shared across the runs (it is
deterministic); so are the gathered per-edge scaled values the samplers
draw from (one O(nnz) gather total, via
:class:`~repro.core.choice.ChoiceSampler`) — only the uniform draws
differ between repetitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro._typing import SeedLike, rng_from
from repro.core.choice import ChoiceSampler
from repro.errors import MatchingError
from repro.graph.csr import BipartiteGraph
from repro.matching.matching import Matching
from repro.scaling.result import ScalingResult
from repro.scaling.sinkhorn_knopp import scale_sinkhorn_knopp

__all__ = ["EnsembleResult", "best_of"]


@dataclass(frozen=True)
class EnsembleResult:
    """Outcome of :func:`best_of`."""

    matching: Matching
    scaling: ScalingResult
    #: Cardinality of each run, in execution order.
    cardinalities: tuple[int, ...]

    @property
    def best(self) -> int:
        return max(self.cardinalities)

    @property
    def worst(self) -> int:
        return min(self.cardinalities)

    @property
    def spread(self) -> int:
        """Best minus worst — the concentration the tables' variance
        columns describe."""
        return self.best - self.worst


def best_of(
    graph: BipartiteGraph,
    k: int = 5,
    *,
    method: Literal["one-sided", "two-sided"] = "two-sided",
    iterations: int = 5,
    scaling: ScalingResult | None = None,
    seed: SeedLike = None,
) -> EnsembleResult:
    """Run a heuristic *k* times and keep the best matching.

    Parameters
    ----------
    graph:
        The bipartite graph.
    k:
        Number of independent runs (>= 1).
    method:
        ``"two-sided"`` (default) or ``"one-sided"``.
    iterations:
        Scaling budget when *scaling* is not supplied (computed once).
    scaling:
        Reuse a precomputed scaling across all runs.
    seed:
        Master seed; each run draws from the stream deterministically.
    """
    if k < 1:
        raise MatchingError(f"k must be >= 1, got {k}")
    if method not in ("one-sided", "two-sided"):
        raise MatchingError(
            f"method must be 'one-sided' or 'two-sided', got {method!r}"
        )
    rng = rng_from(seed)
    if scaling is None:
        scaling = scale_sinkhorn_knopp(graph, iterations)

    # The per-edge scaled values are the same for every repetition, so
    # gather them once; each run then only pays its uniform draws, the
    # binary searches, and the matching extraction.  The samplers consume
    # the random stream exactly as the per-run heuristics would, so
    # results match run-by-run calls with the same master seed.
    row_sampler = ChoiceSampler.for_rows(graph, scaling.dr, scaling.dc)
    col_sampler = (
        ChoiceSampler.for_cols(graph, scaling.dr, scaling.dc)
        if method == "two-sided"
        else None
    )

    best_matching: Matching | None = None
    cards: list[int] = []
    for _ in range(k):
        row_choice = row_sampler.sample(rng)
        if col_sampler is None:
            from repro.core.onesided import cmatch_from_choices

            cmatch = cmatch_from_choices(row_choice, graph.ncols)
            matching = Matching.from_col_match(cmatch, graph.nrows)
        else:
            from repro.core.karp_sipser_mt import karp_sipser_mt

            col_choice = col_sampler.sample(rng)
            matching = karp_sipser_mt(row_choice, col_choice)
        card = matching.cardinality
        cards.append(card)
        if best_matching is None or card > best_matching.cardinality:
            best_matching = matching
    assert best_matching is not None
    return EnsembleResult(
        matching=best_matching,
        scaling=scaling,
        cardinalities=tuple(cards),
    )
