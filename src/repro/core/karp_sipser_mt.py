"""``KarpSipserMT`` — the paper's Algorithm 4.

A specialised, parallelisable Karp–Sipser that is an *exact* maximum
matching algorithm on "choice subgraphs": graphs whose edge set is
``{(u, choice[u])}`` for a 1-out choice per vertex (rows choose columns,
columns choose rows).  The paper's Lemmas 1–4 justify the two phases:

* every component has at most one cycle (Lemma 1);
* Phase 1 needs to track only **out-one** vertices — an in-one vertex
  implies an out-one vertex exists (Lemma 2), and consuming an out-one
  vertex creates at most one new out-one vertex, so a thread can follow
  the chain without any worklist (Lemma 4);
* after Phase 1, the column-choice edges of the residual graph form a
  maximum matching of it, so Phase 2 is a plain parallel loop (Lemma 3).

Vertex numbering: the unified id space puts rows at ``0..nrows-1`` and
columns at ``nrows..nrows+ncols-1``.  ``choice[u] = NIL`` is allowed (an
empty row/column has nothing to choose) — such vertices are isolated in
the choice subgraph.

Three engines share this logic:

* :func:`karp_sipser_mt` — serial execution (the reference; also the
  fastest in CPython);
* :func:`karp_sipser_mt_simulated` — p simulated threads under a
  :class:`~repro.parallel.simthread.SimScheduler`, using the atomic
  operations exactly where Algorithm 4 places them — this is how the
  concurrency claims are verified;
* :func:`karp_sipser_mt_threaded` — real Python threads with striped-lock
  atomics (correctness demonstration on real threads; CPython's GIL makes
  it a correctness tool, not a speed tool — see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry as _tm
from repro._typing import IndexArray, SeedLike
from repro.errors import MatchingError, ShapeError
from repro.graph.build import from_edges
from repro.graph.csr import BipartiteGraph
from repro.matching.matching import NIL, Matching
from repro.parallel.atomics import AtomicArray
from repro.parallel.partition import guided_chunks
from repro.parallel.simthread import SchedulePolicy, SimScheduler

__all__ = [
    "KarpSipserMTStats",
    "karp_sipser_mt",
    "karp_sipser_mt_vectorized",
    "karp_sipser_mt_parallel",
    "karp_sipser_mt_simulated",
    "karp_sipser_mt_threaded",
    "choice_graph",
    "unify_choices",
    "matching_from_unified",
    "karp_sipser_mt_work_profile",
]


@dataclass(frozen=True)
class KarpSipserMTStats:
    """Counters from one KarpSipserMT run."""

    #: Vertices matched during Phase 1 (out-one chains), counted in pairs.
    phase1_pairs: int
    #: Pairs matched during Phase 2 (residual cycles and 2-cliques).
    phase2_pairs: int
    #: Number of Phase-1 chains initiated (root out-one vertices consumed).
    chains: int
    #: Longest chain followed by a single (possibly simulated) thread.
    longest_chain: int

    @property
    def cardinality(self) -> int:
        return self.phase1_pairs + self.phase2_pairs


def _record_stats(engine: str, stats: KarpSipserMTStats) -> None:
    """Publish one run's phase counters (telemetry known to be enabled).

    Engines call this once per run, after the fact — the instrumentation
    policy keeps the per-vertex loops untouched so the disabled-mode cost
    stays at a single boolean check per engine invocation.
    """
    _tm.incr(f"ks_mt.{engine}.runs")
    _tm.incr(f"ks_mt.{engine}.phase1_pairs", stats.phase1_pairs)
    _tm.incr(f"ks_mt.{engine}.phase2_pairs", stats.phase2_pairs)
    if stats.chains >= 0:
        _tm.incr(f"ks_mt.{engine}.chains", stats.chains)
        _tm.set_gauge(f"ks_mt.{engine}.longest_chain", stats.longest_chain)
        if stats.chains:
            _tm.set_gauge(
                f"ks_mt.{engine}.mean_chain",
                stats.phase1_pairs / stats.chains,
            )


# ----------------------------------------------------------------------
# Helpers shared by the engines
# ----------------------------------------------------------------------
def unify_choices(
    row_choice: IndexArray, col_choice: IndexArray
) -> tuple[IndexArray, int, int]:
    """Concatenate row/column choice arrays into the unified id space.

    ``row_choice[i]`` is a column id (or NIL); ``col_choice[j]`` is a row
    id (or NIL).  Returns ``(choice, nrows, ncols)`` with columns shifted
    by ``nrows``.
    """
    row_choice = np.asarray(row_choice, dtype=np.int64)
    col_choice = np.asarray(col_choice, dtype=np.int64)
    nrows = int(row_choice.shape[0])
    ncols = int(col_choice.shape[0])
    if row_choice.size and row_choice.max() >= ncols:
        raise ShapeError("row_choice references column out of range")
    if col_choice.size and col_choice.max() >= nrows:
        raise ShapeError("col_choice references row out of range")
    choice = np.empty(nrows + ncols, dtype=np.int64)
    shifted = row_choice.copy()
    shifted[shifted != NIL] += nrows
    choice[:nrows] = shifted
    choice[nrows:] = col_choice
    return choice, nrows, ncols


def choice_graph(
    row_choice: IndexArray, col_choice: IndexArray
) -> BipartiteGraph:
    """Materialise the choice subgraph ``G`` of Algorithm 3 (line 8).

    The engines never need this (they work on the ``choice`` array
    directly, the optimisation the paper highlights); it exists for
    verification — e.g. running Hopcroft–Karp on ``G`` to check
    KarpSipserMT's maximality.
    """
    row_choice = np.asarray(row_choice, dtype=np.int64)
    col_choice = np.asarray(col_choice, dtype=np.int64)
    nrows, ncols = row_choice.shape[0], col_choice.shape[0]
    r_valid = np.flatnonzero(row_choice != NIL)
    c_valid = np.flatnonzero(col_choice != NIL)
    rows = np.concatenate([r_valid, col_choice[c_valid]])
    cols = np.concatenate([row_choice[r_valid], c_valid])
    return from_edges(nrows, ncols, rows, cols)


def _init_mark_deg(
    choice: IndexArray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised init (lines 1–9 of Algorithm 4): ``mark`` and ``deg``.

    ``mark[u] = 1`` iff no vertex chose ``u``; ``deg[v] = 1 + #{w :
    choice[w] = v, choice[v] != w}`` (mutual pairs do not count).
    """
    n = choice.shape[0]
    mark = np.ones(n, dtype=bool)
    deg = np.ones(n, dtype=np.int64)
    pointers = np.flatnonzero(choice != NIL)
    targets = choice[pointers]
    mark[targets] = False
    not_mutual = choice[targets] != pointers
    np.add.at(deg, targets[not_mutual], 1)
    return mark, deg


def matching_from_unified(
    match: IndexArray, nrows: int, ncols: int
) -> Matching:
    """Convert a unified-id match array into a :class:`Matching`."""
    row_match = np.full(nrows, NIL, dtype=np.int64)
    col_match = np.full(ncols, NIL, dtype=np.int64)
    rows_part = match[:nrows]
    matched_rows = np.flatnonzero(rows_part != NIL)
    row_match[matched_rows] = rows_part[matched_rows] - nrows
    cols_part = match[nrows:]
    matched_cols = np.flatnonzero(cols_part != NIL)
    col_match[matched_cols] = cols_part[matched_cols]
    # Cross-validate the two halves (a corrupted engine shows up here).
    if not np.array_equal(
        np.flatnonzero(row_match != NIL),
        np.sort(col_match[col_match != NIL]),
    ):
        raise MatchingError("unified match array is inconsistent")
    return Matching(row_match, col_match)


# ----------------------------------------------------------------------
# Serial engine
# ----------------------------------------------------------------------
def karp_sipser_mt(
    row_choice: IndexArray,
    col_choice: IndexArray,
    *,
    with_stats: bool = False,
) -> Matching | tuple[Matching, KarpSipserMTStats]:
    """Run Algorithm 4 serially on a choice subgraph.

    Returns a maximum-cardinality matching of the graph
    ``{(i, row_choice[i])} ∪ {(col_choice[j], j)}``.
    """
    choice, nrows, ncols = unify_choices(row_choice, col_choice)
    n = nrows + ncols
    with _tm.span("karp_sipser_mt.serial", n=n) as sp:
        mark, deg = _init_mark_deg(choice)
        match = np.full(n, NIL, dtype=np.int64)

        phase1_pairs = 0
        chains = 0
        longest = 0

        # Phase 1: out-one chains.
        with _tm.span("phase1"):
            for u in range(n):
                if not mark[u] or choice[u] == NIL:
                    continue
                curr = u
                length = 0
                while curr != NIL:
                    nbr = int(choice[curr])
                    if nbr == NIL or match[nbr] != NIL:
                        break
                    match[nbr] = curr
                    match[curr] = nbr
                    phase1_pairs += 1
                    length += 1
                    nxt = int(choice[nbr])
                    curr = NIL
                    if nxt != NIL and match[nxt] == NIL:
                        deg[nxt] -= 1
                        if deg[nxt] == 1:
                            curr = nxt
                if length:
                    chains += 1
                    longest = max(longest, length)

        # Phase 2: residual cycles / 2-cliques via column choices.
        phase2_pairs = 0
        with _tm.span("phase2", loop_size=ncols):
            for j in range(ncols):
                u = nrows + j
                v = int(choice[u])
                if v != NIL and match[u] == NIL and match[v] == NIL:
                    match[u] = v
                    match[v] = u
                    phase2_pairs += 1

        result = matching_from_unified(match, nrows, ncols)
        stats = KarpSipserMTStats(phase1_pairs, phase2_pairs, chains, longest)
        if _tm.enabled():
            _record_stats("serial", stats)
            sp.set(cardinality=stats.cardinality)
    if with_stats:
        return result, stats
    return result


# ----------------------------------------------------------------------
# Vectorized engine
# ----------------------------------------------------------------------
def karp_sipser_mt_vectorized(
    row_choice: IndexArray,
    col_choice: IndexArray,
) -> Matching:
    """Round-based numpy implementation of Algorithm 4.

    Phase 1 processes *all current out-one vertices per round* instead of
    chasing chains one thread at a time: conflicts (several out-ones
    choosing the same target) are resolved by a scatter (one survivor per
    target — the data-parallel analogue of the CAS), and the in-pointer
    counts of the consumed vertices' targets are decremented in bulk,
    which exposes the next round's out-ones.  The number of rounds is the
    longest chain length (tiny on 1-out graphs), and each round is pure
    numpy — on large instances this engine is ~an order of magnitude
    faster than the Python-loop serial engine, with identical cardinality
    (it computes a maximum matching of the same choice subgraph; tests
    cross-check both).
    """
    choice, nrows, ncols = unify_choices(row_choice, col_choice)
    n = nrows + ncols
    with _tm.span("karp_sipser_mt.vectorized", n=n) as sp:
        rounds = 0
        match = np.full(n, NIL, dtype=np.int64)

        valid = choice != NIL
        # in_count[u]: number of *unmatched* vertices currently choosing u.
        in_count = np.zeros(n, dtype=np.int64)
        np.add.at(in_count, choice[valid], 1)

        # Vertices whose out-edge is still usable (target unmatched, self
        # unmatched).  Candidates are out-ones: in_count == 0 among them.
        alive = valid.copy()
        while True:
            candidates = np.flatnonzero(
                alive & (in_count == 0) & (match == NIL)
            )
            if candidates.size:
                targets = choice[candidates]
                usable = match[targets] == NIL
                candidates = candidates[usable]
                targets = targets[usable]
            if candidates.size == 0:
                break
            rounds += 1
            # Scatter resolves conflicts: last writer per target survives.
            winner_of = np.full(n, NIL, dtype=np.int64)
            winner_of[targets] = candidates
            winners = winner_of[targets] == candidates
            w = candidates[winners]
            t = targets[winners]
            match[w] = t
            match[t] = w
            # Losers' out-edges are dead (their target is matched) — and so
            # are they as chain continuations: mark not-alive so they do not
            # re-enter candidates forever.
            alive[candidates] = False
            alive[w] = False
            # Consumed targets' out-pointers die: decrement their targets'
            # in-counts (skipping targets-of-targets that are now matched —
            # matched vertices never become candidates anyway, but keeping
            # counts exact preserves the out-one semantics for the rest).
            t_next = choice[t]
            t_has_next = t_next != NIL
            np.subtract.at(in_count, t_next[t_has_next], 1)
            # The matched winners' in-pointers also die for *their* targets?
            # No: winners matched WITH their targets; their out-pointer went
            # to the matched target, nothing else changes.  But other
            # unmatched vertices pointing AT the winners keep pointing at a
            # matched vertex — their edges are dead; decrementing is not
            # needed because what matters is in_count of *unmatched* targets
            # only (matched vertices never become candidates).

        if _tm.enabled():
            phase1_pairs = int(np.count_nonzero(match != NIL)) // 2

        # Phase 2: residual cycles/2-cliques via column choices (Lemma 3:
        # conflict-free among the residual columns).
        cols = np.arange(nrows, n, dtype=np.int64)
        v = choice[cols]
        ok = (v != NIL) & (match[cols] == NIL)
        ok[ok] &= match[v[ok]] == NIL
        cu = cols[ok]
        cv = v[ok]
        # Residual column choices are pairwise distinct (cycle structure);
        # a duplicate would indicate corrupted input — resolve by scatter
        # anyway so arbitrary inputs still yield a valid matching.
        winner_of = np.full(n, NIL, dtype=np.int64)
        winner_of[cv] = cu
        keep = winner_of[cv] == cu
        match[cu[keep]] = cv[keep]
        match[cv[keep]] = cu[keep]

        result = matching_from_unified(match, nrows, ncols)
        if _tm.enabled():
            total_pairs = int(np.count_nonzero(match != NIL)) // 2
            _record_stats(
                "vectorized",
                KarpSipserMTStats(
                    phase1_pairs, total_pairs - phase1_pairs,
                    chains=-1, longest_chain=-1,
                ),
            )
            _tm.incr("ks_mt.vectorized.rounds", rounds)
            sp.set(rounds=rounds, cardinality=total_pairs)
    return result


# ----------------------------------------------------------------------
# Backend-parallel engine
# ----------------------------------------------------------------------
def karp_sipser_mt_parallel(
    row_choice: IndexArray,
    col_choice: IndexArray,
    *,
    backend=None,
) -> Matching:
    """Round-based Algorithm 4 with the scans on an execution backend.

    Same rounds as :func:`karp_sipser_mt_vectorized`, but the per-round
    candidate scan (Phase 1) and the residual-column scan (Phase 2) run
    as registered kernels (``ks_phase1_scan`` / ``ks_phase2_scan``) —
    the expensive full-array reads — while the cheap commits (conflict
    scatter, in-count decrements, the actual match writes) stay in the
    parent between rounds.  The kernels only write their own slice of a
    mask array, so rounds are race-free by construction, and the result
    is bitwise identical to the vectorized engine on every backend.
    """
    from repro.parallel.backends import get_backend
    from repro.parallel.kernels import run_kernel

    be = get_backend(backend)
    choice, nrows, ncols = unify_choices(row_choice, col_choice)
    n = nrows + ncols
    with _tm.span(
        "karp_sipser_mt.parallel", n=n, backend=be.label
    ) as sp:
        rounds = 0
        match = np.full(n, NIL, dtype=np.int64)

        valid = choice != NIL
        in_count = np.zeros(n, dtype=np.int64)
        np.add.at(in_count, choice[valid], 1)
        alive = valid.copy()
        cand = np.empty(n, dtype=bool)

        while True:
            run_kernel(
                "ks_phase1_scan", n,
                {"alive": alive, "in_count": in_count, "match": match,
                 "choice": choice, "cand": cand},
                backend=be,
            )
            candidates = np.flatnonzero(cand)
            if candidates.size == 0:
                break
            rounds += 1
            targets = choice[candidates]
            # Scatter resolves conflicts: last writer per target survives
            # (same resolution as the vectorized engine).
            winner_of = np.full(n, NIL, dtype=np.int64)
            winner_of[targets] = candidates
            winners = winner_of[targets] == candidates
            w = candidates[winners]
            t = targets[winners]
            match[w] = t
            match[t] = w
            alive[candidates] = False
            alive[w] = False
            t_next = choice[t]
            t_has_next = t_next != NIL
            np.subtract.at(in_count, t_next[t_has_next], 1)

        if _tm.enabled():
            phase1_pairs = int(np.count_nonzero(match != NIL)) // 2

        if ncols:
            ok = np.empty(ncols, dtype=bool)
            run_kernel(
                "ks_phase2_scan", ncols,
                {"choice": choice, "match": match, "ok": ok},
                scalars={"nrows": nrows},
                backend=be,
            )
            cu = nrows + np.flatnonzero(ok)
            cv = choice[cu]
            winner_of = np.full(n, NIL, dtype=np.int64)
            winner_of[cv] = cu
            keep = winner_of[cv] == cu
            match[cu[keep]] = cv[keep]
            match[cv[keep]] = cu[keep]

        result = matching_from_unified(match, nrows, ncols)
        if _tm.enabled():
            total_pairs = int(np.count_nonzero(match != NIL)) // 2
            _record_stats(
                "parallel",
                KarpSipserMTStats(
                    phase1_pairs, total_pairs - phase1_pairs,
                    chains=-1, longest_chain=-1,
                ),
            )
            _tm.incr("ks_mt.parallel.rounds", rounds)
            sp.set(rounds=rounds, cardinality=total_pairs)
    return result


# ----------------------------------------------------------------------
# Simulated-parallel engine
# ----------------------------------------------------------------------
def _phase1_program(
    vertices: IndexArray,
    choice: IndexArray,
    mark: np.ndarray,
    match: AtomicArray,
    deg: AtomicArray,
):
    """One simulated thread's Phase-1 body.

    Yields before every shared-memory access so the scheduler can
    interleave threads at exactly the granularity real hardware would.

    Lost CAS races (another thread claimed the neighbour first) are
    aggregated locally and recorded once per program as the
    ``ks_mt.simulated.cas_lost`` counter — the paper's "retry" events.
    """
    cas_lost = 0
    for u in vertices:
        u = int(u)
        if not mark[u] or choice[u] == NIL:
            continue
        curr = u
        while curr != NIL:
            nbr = int(choice[curr])
            if nbr == NIL:
                # A chain can continue into a vertex whose own choice is
                # NIL (possible only without total support); it is a dead
                # end.
                break
            yield ("cas", nbr)
            if match.compare_and_swap(nbr, NIL, curr) == curr:
                yield ("store", curr)
                match.store(curr, nbr)
                nxt = int(choice[nbr])
                curr = NIL
                if nxt != NIL:
                    yield ("load", nxt)
                    if match.load(nxt) == NIL:
                        yield ("addfetch", nxt)
                        if deg.add_and_fetch(nxt, -1) == 1:
                            curr = nxt
            else:
                cas_lost += 1
                curr = NIL
        yield ("next", u)
    if cas_lost:
        _tm.incr("ks_mt.simulated.cas_lost", cas_lost)


def _phase2_program(
    columns: IndexArray,
    choice: IndexArray,
    nrows: int,
    match: AtomicArray,
):
    """One simulated thread's Phase-2 body (plain reads/writes — the
    residual structure makes them conflict-free; see Lemma 3)."""
    for j in columns:
        u = nrows + int(j)
        v = int(choice[u])
        if v == NIL:
            continue
        yield ("load", u)
        if match.load(u) != NIL:
            continue
        yield ("load", v)
        if match.load(v) != NIL:
            continue
        yield ("store", u)
        match.store(u, v)
        yield ("store", v)
        match.store(v, u)


def karp_sipser_mt_simulated(
    row_choice: IndexArray,
    col_choice: IndexArray,
    n_threads: int,
    *,
    policy: SchedulePolicy | str = SchedulePolicy.RANDOM,
    seed: SeedLike = None,
    with_stats: bool = False,
) -> Matching | tuple[Matching, KarpSipserMTStats]:
    """Run Algorithm 4 under *n_threads* simulated threads.

    The vertex range is split into OpenMP-``guided``-style chunks dealt
    round-robin to threads (matching the paper's ``schedule(guided)``),
    and the scheduler interleaves the threads' atomic steps per *policy*.
    The result is a maximum matching for **every** schedule; tests sweep
    policies and seeds to exercise the races.
    """
    if n_threads < 1:
        raise ShapeError(f"n_threads must be >= 1, got {n_threads}")
    choice, nrows, ncols = unify_choices(row_choice, col_choice)
    n = nrows + ncols
    with _tm.span(
        "karp_sipser_mt.simulated", n=n, n_threads=n_threads
    ) as sp:
        mark, deg0 = _init_mark_deg(choice)
        match = AtomicArray(np.full(n, NIL, dtype=np.int64))
        deg = AtomicArray(deg0)

        chunks = guided_chunks(n, n_threads, 16)
        assignment: list[list[int]] = [[] for _ in range(n_threads)]
        for idx, (lo, hi) in enumerate(chunks):
            assignment[idx % n_threads].extend(range(lo, hi))

        programs = [
            _phase1_program(
                np.asarray(vs, dtype=np.int64), choice, mark, match, deg
            )
            for vs in assignment
            if vs
        ]
        with _tm.span("phase1"):
            SimScheduler(programs, policy=policy, seed=seed).run()
        phase1_pairs = int(np.count_nonzero(match.values != NIL)) // 2

        col_chunks = guided_chunks(ncols, n_threads, 16)
        col_assignment: list[list[int]] = [[] for _ in range(n_threads)]
        for idx, (lo, hi) in enumerate(col_chunks):
            col_assignment[idx % n_threads].extend(range(lo, hi))
        programs2 = [
            _phase2_program(
                np.asarray(js, dtype=np.int64), choice, nrows, match
            )
            for js in col_assignment
            if js
        ]
        with _tm.span("phase2", loop_size=ncols):
            SimScheduler(programs2, policy=policy, seed=seed).run()
        total_pairs = int(np.count_nonzero(match.values != NIL)) // 2

        result = matching_from_unified(match.values, nrows, ncols)
        stats = KarpSipserMTStats(
            phase1_pairs, total_pairs - phase1_pairs, chains=-1,
            longest_chain=-1,
        )
        if _tm.enabled():
            _record_stats("simulated", stats)
            sp.set(cardinality=total_pairs)
    if with_stats:
        return result, stats
    return result


# ----------------------------------------------------------------------
# Real-thread engine
# ----------------------------------------------------------------------
def karp_sipser_mt_threaded(
    row_choice: IndexArray,
    col_choice: IndexArray,
    n_threads: int,
) -> Matching:
    """Run Algorithm 4 on real Python threads with locked atomics.

    Demonstrates the protocol on genuine concurrency.  CPython's GIL means
    this is about safety, not speed (the machine model covers speedups).
    """
    import threading

    if n_threads < 1:
        raise ShapeError(f"n_threads must be >= 1, got {n_threads}")
    choice, nrows, ncols = unify_choices(row_choice, col_choice)
    n = nrows + ncols
    mark, deg0 = _init_mark_deg(choice)
    match = AtomicArray(np.full(n, NIL, dtype=np.int64), locking=True)
    deg = AtomicArray(deg0, locking=True)

    def phase1_worker(lo: int, hi: int) -> None:
        for u in range(lo, hi):
            if not mark[u] or choice[u] == NIL:
                continue
            curr = u
            while curr != NIL:
                nbr = int(choice[curr])
                if nbr == NIL:
                    break
                if match.compare_and_swap(nbr, NIL, curr) == curr:
                    match.store(curr, nbr)
                    nxt = int(choice[nbr])
                    curr = NIL
                    if nxt != NIL and match.load(nxt) == NIL:
                        if deg.add_and_fetch(nxt, -1) == 1:
                            curr = nxt
                else:
                    curr = NIL

    def phase2_worker(lo: int, hi: int) -> None:
        for j in range(lo, hi):
            u = nrows + j
            v = int(choice[u])
            if v == NIL:
                continue
            if match.load(u) == NIL and match.load(v) == NIL:
                match.store(u, v)
                match.store(v, u)

    from repro.parallel.partition import static_partition

    with _tm.span(
        "karp_sipser_mt.threaded", n=n, n_threads=n_threads
    ) as sp:
        for name, worker, count in (
            ("phase1", phase1_worker, n), ("phase2", phase2_worker, ncols)
        ):
            threads = [
                threading.Thread(target=worker, args=(lo, hi))
                for lo, hi in static_partition(count, n_threads)
            ]
            with _tm.span(name):
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()

        result = matching_from_unified(match.values, nrows, ncols)
        if _tm.enabled():
            pairs = int(np.count_nonzero(match.values != NIL)) // 2
            _tm.incr("ks_mt.threaded.runs")
            sp.set(cardinality=pairs)
    return result


# ----------------------------------------------------------------------
# Work profile for the machine model
# ----------------------------------------------------------------------
def karp_sipser_mt_work_profile(
    row_choice: IndexArray, col_choice: IndexArray
) -> np.ndarray:
    """Per-vertex Phase-1 work units for the machine cost model.

    Replays the serial engine charging, for each loop item ``u``, a unit
    for the scan plus the length of the chain rooted at ``u`` (each chain
    step is a CAS + a fetch-add + pointer reads ≈ 6 units).  This is the
    measured profile that :class:`repro.parallel.MachineModel` schedules
    with the paper's ``guided`` policy to model Figure 4a.
    """
    choice, nrows, ncols = unify_choices(row_choice, col_choice)
    n = nrows + ncols
    mark, deg = _init_mark_deg(choice)
    match = np.full(n, NIL, dtype=np.int64)
    work = np.ones(n, dtype=np.float64)
    for u in range(n):
        if not mark[u] or choice[u] == NIL:
            continue
        curr = u
        while curr != NIL:
            nbr = int(choice[curr])
            if nbr == NIL or match[nbr] != NIL:
                work[u] += 2.0
                break
            match[nbr] = curr
            match[curr] = nbr
            work[u] += 6.0
            nxt = int(choice[nbr])
            curr = NIL
            if nxt != NIL and match[nxt] == NIL:
                deg[nxt] -= 1
                if deg[nxt] == 1:
                    curr = nxt
    return work
