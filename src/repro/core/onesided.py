"""``OneSidedMatch`` — the paper's Algorithm 2.

Scale, then let every row independently pick one column with probability
proportional to the scaled entry; writes into ``cmatch`` race and the last
write survives, which still defines a valid matching.  No synchronisation
or conflict resolution of any kind is required — the property the paper
leads with — and Theorem 1 guarantees an expected matching size of at
least ``n (1 - 1/e)`` on matrices with total support.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry as _tm
from repro._typing import IndexArray, SeedLike, rng_from
from repro.constants import ONE_SIDED_GUARANTEE, one_sided_guarantee_relaxed
from repro.graph.csr import BipartiteGraph
from repro.matching.matching import NIL, Matching
from repro.parallel.backends import Backend, get_backend
from repro.scaling.result import ScalingResult
from repro.scaling.sinkhorn_knopp import scale_sinkhorn_knopp
from repro.core.choice import scaled_col_choices, scaled_row_choices

__all__ = ["OneSidedResult", "one_sided_match", "cmatch_from_choices"]


@dataclass(frozen=True)
class OneSidedResult:
    """Output of :func:`one_sided_match`."""

    matching: Matching
    scaling: ScalingResult
    #: The column chosen by each row (NIL for empty rows) — the raw
    #: pre-collision choices.
    row_choice: IndexArray
    #: The auction refinement when ``quality="exact"`` was requested
    #: (``matching`` is then the refined, provably maximum matching).
    refined: "object | None" = None

    @property
    def cardinality(self) -> int:
        return self.matching.cardinality

    @property
    def guarantee(self) -> float:
        """Best provable expected-quality floor for the scaling rung used.

        ``"full"`` rung: Theorem 1's ``1 - 1/e`` (assuming total
        support).  ``"capped"`` rung: the Section 3.3 relaxed bound
        ``1 - e^{-α}`` with ``α`` from the achieved column-sum error.
        ``"uniform"`` rung: 0 — the matching is still valid, but nothing
        is guaranteed about its size.  After an exact refinement the
        floor is 1 — the matching is maximum, full stop.
        """
        if self.refined is not None:
            return 1.0
        return _rung_guarantee(self.scaling, ONE_SIDED_GUARANTEE)


def _rung_guarantee(scaling: ScalingResult, full_floor: float) -> float:
    """Quality floor for a scaling result, by degradation-ladder rung."""
    if scaling.rung == "uniform":
        return 0.0
    if scaling.rung == "capped":
        # Section 3.3: column sums >= alpha give a 1 - e^{-alpha} floor.
        alpha = max(0.0, 1.0 - min(1.0, scaling.error))
        return one_sided_guarantee_relaxed(alpha)
    return full_floor


def cmatch_from_choices(row_choice: IndexArray, ncols: int) -> IndexArray:
    """Collapse racing writes ``cmatch[choice[i]] = i`` (last write wins).

    numpy's fancy assignment applies updates in index order, which is one
    legal outcome of the shared-memory race; different thread interleavings
    yield different survivors but always a valid matching of identical
    expected size (no column is counted twice either way).
    """
    row_choice = np.asarray(row_choice, dtype=np.int64)
    cmatch = np.full(ncols, NIL, dtype=np.int64)
    rows = np.flatnonzero(row_choice != NIL)
    cmatch[row_choice[rows]] = rows
    return cmatch


def one_sided_match(
    graph: BipartiteGraph,
    iterations: int = 5,
    *,
    scaling: ScalingResult | None = None,
    seed: SeedLike = None,
    backend: Backend | str | None = None,
    side: str = "row",
    deadline: float | None = None,
    quality: str = "heuristic",
) -> OneSidedResult:
    """Run OneSidedMatch on *graph*.

    Parameters
    ----------
    graph:
        The bipartite graph / (0,1) matrix.
    iterations:
        Sinkhorn–Knopp iterations when *scaling* is not supplied.  The
        paper's evaluation uses 0 (uniform choices, no guarantee), 1, 5,
        and 10; 5 reaches the guaranteed quality on almost every instance.
    scaling:
        Reuse a precomputed :class:`~repro.scaling.ScalingResult`.
    seed:
        Randomness for the choices.
    backend:
        Parallel backend for scaling and choice sampling.
    side:
        ``"row"`` (default, the paper's formulation: rows choose columns)
        or ``"column"`` — useful on rectangular matrices where the smaller
        side should do the choosing.
    deadline:
        Total wall-clock budget in seconds for this call.  Installs a
        :func:`~repro.resilience.request_deadline`, which a
        :class:`~repro.resilience.ResilientBackend` *backend* enforces
        on every chunk attempt and retry backoff (typed
        :class:`~repro.errors.DeadlineExceededError` on exhaustion).
        With other backends the budget is advisory.  Nested inside an
        ambient budget the tighter one wins.
    quality:
        ``"heuristic"`` (default) returns the paper's expected-quality
        matching as-is; ``"exact"`` refines it to a provably maximum
        matching with the ε-scaling auction (warm-started from the
        heuristic result and its scaling duals), raising the guarantee
        to 1 at the cost of exact-engine latency.

    Returns
    -------
    OneSidedResult
        The matching (valid on any input), the scaling used, and the raw
        choices.
    """
    from repro.resilience.deadline import request_deadline

    if quality not in ("heuristic", "exact"):
        raise ValueError(
            f"quality must be 'heuristic' or 'exact', got {quality!r}"
        )
    be = get_backend(backend)
    rng = rng_from(seed)
    with request_deadline(deadline), _tm.span(
        "core.one_sided_match", side=side
    ) as sp:
        if scaling is None:
            scaling = scale_sinkhorn_knopp(graph, iterations, backend=be)
        with _tm.span("choices"):
            if side == "row":
                row_choice = scaled_row_choices(
                    graph, scaling.dr, scaling.dc, rng, backend=be
                )
            elif side == "column":
                row_choice = scaled_col_choices(
                    graph, scaling.dr, scaling.dc, rng, backend=be
                )
            else:
                raise ValueError(
                    f"side must be 'row' or 'column', got {side!r}"
                )
        if side == "row":
            cmatch = cmatch_from_choices(row_choice, graph.ncols)
            matching = Matching.from_col_match(cmatch, graph.nrows)
        else:
            # rmatch[i] is the column whose racing write survived on row
            # i, which is exactly a row_match array.
            rmatch = cmatch_from_choices(row_choice, graph.nrows)
            matching = Matching.from_row_match(rmatch, graph.ncols)
        if _tm.enabled():
            cardinality = matching.cardinality
            chosen = int(np.count_nonzero(row_choice != NIL))
            collisions = chosen - cardinality
            _tm.incr("onesided.runs")
            _tm.incr("onesided.choices", chosen)
            _tm.incr("onesided.collisions", collisions)
            sp.set(
                cardinality=cardinality,
                collisions=collisions,
                rung=scaling.rung,
            )
        refined = None
        if quality == "exact":
            from repro.matching.exact.auction import auction_match

            refined = auction_match(
                graph, initial=matching, scaling=scaling, backend=be,
                seed=rng,
            )
            matching = refined.matching
    return OneSidedResult(
        matching=matching,
        scaling=scaling,
        row_choice=row_choice,
        refined=refined,
    )
