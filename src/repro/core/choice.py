"""Scaled random neighbour selection (the sampling step of Algorithms 2–3).

Every row ``i`` picks a column ``j ∈ A_i*`` with probability

.. math:: p_i(j) = \\frac{s_{ij}}{\\sum_{k \\in A_{i*}} s_{ik}},
          \\qquad s_{ij} = dr[i] \\cdot dc[j],

and symmetrically for columns.  Within one row the factor ``dr[i]`` is
constant, so the weights reduce to the gathered opposite-side vector —
which lets the whole selection be three vectorised passes (gather, prefix
sum, binary search), with no per-edge Python work:

1. ``w = dc[col_ind]`` — per-edge weights in CSR order;
2. ``cum = cumsum(w)`` — global prefix sums (per-row segments are slices);
3. for each row draw ``u ~ U(0,1]`` and binary-search the target
   ``base_i + u * rowsum_i`` inside the row's slice.

This is exactly the per-thread procedure the paper describes ("choose a
random number r from (0, Σ s_ik] then find the smallest j ...") executed
for all rows at once; a *backend* can split the row axis across workers.
"""

from __future__ import annotations

import numpy as np

from repro._typing import FloatArray, IndexArray, SeedLike, rng_from
from repro.errors import ShapeError
from repro.graph.csr import BipartiteGraph
from repro.matching.matching import NIL
from repro.parallel.backends import Backend, SerialBackend, get_backend

__all__ = ["scaled_row_choices", "scaled_col_choices", "choices_from_weights"]


def choices_from_weights(
    ptr: IndexArray,
    ind: IndexArray,
    weights: FloatArray,
    rng: np.random.Generator,
    *,
    backend: Backend | None = None,
) -> IndexArray:
    """One weighted pick per segment of a CSR-like structure.

    Returns, for each segment ``i``, an element of
    ``ind[ptr[i]:ptr[i+1]]`` drawn with probability proportional to the
    matching slice of *weights*; :data:`NIL` for empty segments.
    """
    n = ptr.shape[0] - 1
    if ind.shape != weights.shape:
        raise ShapeError("ind and weights must be parallel arrays")
    if ind.shape[0] == 0 or n == 0:
        return np.full(n, NIL, dtype=np.int64)
    # Uniform draws first so results are identical across backends: the
    # random stream is consumed in one deterministic vectorised call.
    draws = 1.0 - rng.random(n)  # in (0, 1]

    cum = np.cumsum(weights)
    prefix = np.concatenate([[0.0], cum])

    # Workers return their slice of picks (no shared-array writes) so the
    # kernel also runs on process backends; every pick depends only on the
    # global prefix sums and the row's own draw, so the result is bitwise
    # identical for any backend and worker count.
    def work(lo: int, hi: int) -> IndexArray:
        base = prefix[ptr[lo:hi]]
        totals = prefix[ptr[lo + 1 : hi + 1]] - base
        targets = base + draws[lo:hi] * totals
        pos = np.searchsorted(cum, targets, side="left")
        # Guard against floating-point drift at segment boundaries.
        pos = np.clip(pos, ptr[lo:hi], ptr[lo + 1 : hi + 1] - 1)
        picked = ind[pos]
        picked[totals <= 0.0] = NIL
        empty = ptr[lo:hi] == ptr[lo + 1 : hi + 1]
        picked[empty] = NIL
        return picked

    be = backend or SerialBackend()
    return np.concatenate(be.map_ranges(work, n))


def scaled_row_choices(
    graph: BipartiteGraph,
    dr: FloatArray,
    dc: FloatArray,
    seed: SeedLike = None,
    *,
    backend: Backend | str | None = None,
) -> IndexArray:
    """For every row, pick a column with probability ∝ the scaled entry.

    Rows with no nonzeros get :data:`NIL`.
    """
    rng = rng_from(seed)
    dc = np.asarray(dc, dtype=np.float64)
    if dc.shape != (graph.ncols,):
        raise ShapeError(f"dc must have shape ({graph.ncols},), got {dc.shape}")
    weights = dc[graph.col_ind]
    return choices_from_weights(
        graph.row_ptr, graph.col_ind, weights, rng,
        backend=get_backend(backend),
    )


def scaled_col_choices(
    graph: BipartiteGraph,
    dr: FloatArray,
    dc: FloatArray,
    seed: SeedLike = None,
    *,
    backend: Backend | str | None = None,
) -> IndexArray:
    """For every column, pick a row with probability ∝ the scaled entry."""
    rng = rng_from(seed)
    dr = np.asarray(dr, dtype=np.float64)
    if dr.shape != (graph.nrows,):
        raise ShapeError(f"dr must have shape ({graph.nrows},), got {dr.shape}")
    weights = dr[graph.row_ind]
    return choices_from_weights(
        graph.col_ptr, graph.row_ind, weights, rng,
        backend=get_backend(backend),
    )
