"""Scaled random neighbour selection (the sampling step of Algorithms 2–3).

Every row ``i`` picks a column ``j ∈ A_i*`` with probability

.. math:: p_i(j) = \\frac{s_{ij}}{\\sum_{k \\in A_{i*}} s_{ik}},
          \\qquad s_{ij} = dr[i] \\cdot dc[j],

and symmetrically for columns.  Within one row the factor ``dr[i]`` is
constant, so the weights reduce to the gathered opposite-side vector —
which lets the whole selection be three vectorised passes (gather, prefix
sum, binary search), with no per-edge Python work.

The passes run as registered kernels (:mod:`repro.parallel.kernels`):
each chunk of rows gathers only its own edges' weights, prefix-sums them
locally, and binary-searches its rows' targets.  The uniform draws are
generated once in the parent, and the chunk grid is fixed per problem
size, so the picks are bitwise identical on every backend and worker
count.  This is exactly the per-thread procedure the paper describes
("choose a random number r from (0, Σ s_ik] then find the smallest j
...") executed chunk-by-chunk.

:class:`ChoiceSampler` precomputes the gathered per-edge weights once and
samples repeatedly — the ensemble runner's fast path.
"""

from __future__ import annotations

import numpy as np

from repro._typing import FloatArray, IndexArray, SeedLike, rng_from
from repro.errors import ShapeError
from repro.graph.csr import BipartiteGraph
from repro.matching.matching import NIL
from repro.parallel.backends import Backend, get_backend
from repro.parallel.kernels import run_kernel

__all__ = [
    "scaled_row_choices",
    "scaled_col_choices",
    "choices_from_weights",
    "ChoiceSampler",
]


def choices_from_weights(
    ptr: IndexArray,
    ind: IndexArray,
    weights: FloatArray,
    rng: np.random.Generator,
    *,
    backend: Backend | None = None,
) -> IndexArray:
    """One weighted pick per segment of a CSR-like structure.

    Returns, for each segment ``i``, an element of
    ``ind[ptr[i]:ptr[i+1]]`` drawn with probability proportional to the
    matching slice of *weights*; :data:`NIL` for empty segments.
    """
    ptr = np.asarray(ptr)
    ind = np.asarray(ind)
    weights = np.asarray(weights)
    n = ptr.shape[0] - 1
    if ind.shape != weights.shape:
        raise ShapeError("ind and weights must be parallel arrays")
    if ind.shape[0] == 0 or n == 0:
        return np.full(n, NIL, dtype=np.int64)
    # Uniform draws first so results are identical across backends: the
    # random stream is consumed in one deterministic vectorised call.
    draws = 1.0 - rng.random(n)  # in (0, 1]
    out = np.empty(n, dtype=np.int64)
    run_kernel(
        "choice_flat", n,
        {"ptr": ptr, "ind": ind, "weights": weights, "draws": draws,
         "out": out},
        backend=backend,
    )
    return out


class ChoiceSampler:
    """Reusable weighted 1-out sampler over a fixed CSR-like structure.

    Gathers nothing per call beyond the fresh uniform draws: the per-edge
    weights are fixed at construction, so ``best_of`` and other repeated
    samplers pay the O(nnz) weight gather once instead of once per run.
    Sampling consumes exactly one ``rng.random(n)`` call, matching
    :func:`choices_from_weights`, so the two produce identical picks from
    identical generator states.
    """

    def __init__(
        self, ptr: IndexArray, ind: IndexArray, weights: FloatArray
    ) -> None:
        self.ptr = np.asarray(ptr)
        self.ind = np.asarray(ind)
        self.weights = np.asarray(weights)
        if self.ind.shape != self.weights.shape:
            raise ShapeError("ind and weights must be parallel arrays")
        self.n = self.ptr.shape[0] - 1

    @classmethod
    def for_rows(
        cls, graph: BipartiteGraph, dr: FloatArray, dc: FloatArray
    ) -> "ChoiceSampler":
        """Sampler drawing one column per row of the scaled *graph*."""
        dc = np.asarray(dc, dtype=np.float64)
        if dc.shape != (graph.ncols,):
            raise ShapeError(
                f"dc must have shape ({graph.ncols},), got {dc.shape}"
            )
        return cls(graph.row_ptr, graph.col_ind, dc[graph.col_ind])

    @classmethod
    def for_cols(
        cls, graph: BipartiteGraph, dr: FloatArray, dc: FloatArray
    ) -> "ChoiceSampler":
        """Sampler drawing one row per column of the scaled *graph*."""
        dr = np.asarray(dr, dtype=np.float64)
        if dr.shape != (graph.nrows,):
            raise ShapeError(
                f"dr must have shape ({graph.nrows},), got {dr.shape}"
            )
        return cls(graph.col_ptr, graph.row_ind, dr[graph.row_ind])

    def sample(
        self,
        rng: np.random.Generator,
        *,
        backend: Backend | str | None = None,
    ) -> IndexArray:
        """One weighted pick per segment (:data:`NIL` where empty)."""
        if self.ind.shape[0] == 0 or self.n == 0:
            return np.full(self.n, NIL, dtype=np.int64)
        draws = 1.0 - rng.random(self.n)
        out = np.empty(self.n, dtype=np.int64)
        run_kernel(
            "choice_flat", self.n,
            {"ptr": self.ptr, "ind": self.ind, "weights": self.weights,
             "draws": draws, "out": out},
            backend=get_backend(backend),
        )
        return out


def _scaled_choices(
    ptr: IndexArray,
    ind: IndexArray,
    opp: FloatArray,
    n: int,
    rng: np.random.Generator,
    backend: Backend,
) -> IndexArray:
    """Fused-gather pick: weights ``opp[ind[...]]`` never materialised."""
    if ind.shape[0] == 0 or n == 0:
        return np.full(n, NIL, dtype=np.int64)
    draws = 1.0 - rng.random(n)
    out = np.empty(n, dtype=np.int64)
    run_kernel(
        "choice_scaled", n,
        {"ptr": ptr, "ind": ind, "opp": opp, "draws": draws, "out": out},
        backend=backend,
    )
    return out


def scaled_row_choices(
    graph: BipartiteGraph,
    dr: FloatArray,
    dc: FloatArray,
    seed: SeedLike = None,
    *,
    backend: Backend | str | None = None,
) -> IndexArray:
    """For every row, pick a column with probability ∝ the scaled entry.

    Rows with no nonzeros get :data:`NIL`.
    """
    rng = rng_from(seed)
    dc = np.asarray(dc, dtype=np.float64)
    if dc.shape != (graph.ncols,):
        raise ShapeError(f"dc must have shape ({graph.ncols},), got {dc.shape}")
    return _scaled_choices(
        graph.row_ptr, graph.col_ind, dc, graph.nrows, rng,
        get_backend(backend),
    )


def scaled_col_choices(
    graph: BipartiteGraph,
    dr: FloatArray,
    dc: FloatArray,
    seed: SeedLike = None,
    *,
    backend: Backend | str | None = None,
) -> IndexArray:
    """For every column, pick a row with probability ∝ the scaled entry."""
    rng = rng_from(seed)
    dr = np.asarray(dr, dtype=np.float64)
    if dr.shape != (graph.nrows,):
        raise ShapeError(f"dr must have shape ({graph.nrows},), got {dr.shape}")
    return _scaled_choices(
        graph.col_ptr, graph.row_ind, dr, graph.ncols, rng,
        get_backend(backend),
    )
