"""Extension: the heuristics on undirected (non-bipartite) graphs.

The paper's conclusion: "We are investigating variants of the proposed
heuristics for finding approximate matchings in undirected graphs.  The
algorithms and results extend naturally."  This module implements that
natural extension:

* the graph is a symmetric pattern over one vertex set (no self-loops
  considered for matching);
* scaling uses the symmetry-preserving algorithm, giving one vector ``d``
  with ``s_ij = d[i] d[j]`` (symmetric doubly stochastic);
* **one-sided**: every vertex picks a scaled-random neighbour; vertex u's
  write ``match[choice[u]] = u`` races exactly as in Algorithm 2, and the
  surviving writes are made mutual in a cleanup pass (in the bipartite
  case the two sides cannot collide, here they can — the cleanup keeps
  each vertex's claim only if it is reciprocated or its target is free);
* **two-sided / 1-out**: the choices form a functional graph whose
  components again carry at most one cycle, so a Karp–Sipser restricted
  to out-one vertices is exact on the choice subgraph, exactly as
  Algorithm 4 (the row/column distinction simply disappears).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import IndexArray, SeedLike, rng_from
from repro.errors import MatchingError, ScalingError, ShapeError
from repro.graph.csr import BipartiteGraph
from repro.matching.matching import NIL
from repro.core.choice import choices_from_weights
from repro.scaling.result import ScalingResult
from repro.scaling.symmetric import is_pattern_symmetric, scale_symmetric

__all__ = [
    "UndirectedMatching",
    "one_sided_match_undirected",
    "one_out_match_undirected",
    "validate_undirected_matching",
]


@dataclass(frozen=True)
class UndirectedMatching:
    """A matching on one vertex set: ``mate[u]`` is u's partner or NIL."""

    mate: IndexArray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "mate", np.ascontiguousarray(self.mate, dtype=np.int64)
        )

    @property
    def cardinality(self) -> int:
        """Number of matched *edges* (pairs)."""
        return int(np.count_nonzero(self.mate != NIL)) // 2

    def matched_vertices(self) -> IndexArray:
        return np.flatnonzero(self.mate != NIL)


def validate_undirected_matching(
    graph: BipartiteGraph, matching: UndirectedMatching
) -> None:
    """Raise unless *matching* is a valid matching of the symmetric graph."""
    mate = matching.mate
    if mate.shape[0] != graph.nrows:
        raise ShapeError("matching size does not fit the graph")
    for u in np.flatnonzero(mate != NIL):
        v = int(mate[u])
        if v == int(u):
            raise MatchingError(f"vertex {u} matched to itself")
        if int(mate[v]) != int(u):
            raise MatchingError(f"match of {u} and {v} is not mutual")
        if not graph.has_edge(int(u), v):
            raise MatchingError(f"matched pair ({u}, {v}) is not an edge")


def _require_symmetric(graph: BipartiteGraph) -> None:
    if not is_pattern_symmetric(graph):
        raise ScalingError(
            "undirected heuristics need a symmetric adjacency pattern"
        )


def _scaled_choices(
    graph: BipartiteGraph,
    d: np.ndarray,
    rng: np.random.Generator,
    *,
    avoid_self: bool = True,
) -> IndexArray:
    """One scaled-random neighbour per vertex (self-loops excluded)."""
    weights = d[graph.col_ind].copy()
    if avoid_self:
        weights[graph.col_ind == graph.row_of_edge()] = 0.0
    return choices_from_weights(graph.row_ptr, graph.col_ind, weights, rng)


def one_sided_match_undirected(
    graph: BipartiteGraph,
    iterations: int = 5,
    *,
    scaling: ScalingResult | None = None,
    seed: SeedLike = None,
) -> UndirectedMatching:
    """One-sided heuristic on an undirected graph.

    Every vertex claims one scaled-random neighbour; surviving claims are
    reconciled into a valid matching: mutual claims always stand, and a
    one-directional claim stands when its target made no standing claim.
    """
    _require_symmetric(graph)
    rng = rng_from(seed)
    if scaling is None:
        scaling = scale_symmetric(graph, iterations)
    choice = _scaled_choices(graph, scaling.dr, rng)

    n = graph.nrows
    # claims[v] = last u that claimed v (the racing-writes semantics).
    claims = np.full(n, NIL, dtype=np.int64)
    claimers = np.flatnonzero(choice != NIL)
    claims[choice[claimers]] = claimers

    mate = np.full(n, NIL, dtype=np.int64)
    # Pass 1: mutual claims (u claimed v, v's surviving claimer is u's
    # own claim target — i.e. claims[choice[u]] == u and vice versa is
    # implied) and reciprocal choices.
    for u in range(n):
        if mate[u] != NIL or choice[u] == NIL:
            continue
        v = int(choice[u])
        if mate[v] == NIL and choice[v] == u:
            mate[u] = v
            mate[v] = u
    # Pass 2: one-directional surviving claims onto free targets.
    for v in range(n):
        u = int(claims[v])
        if u == NIL or mate[v] != NIL or mate[u] != NIL:
            continue
        mate[u] = v
        mate[v] = u
    return UndirectedMatching(mate)


def one_out_match_undirected(
    graph: BipartiteGraph,
    iterations: int = 5,
    *,
    scaling: ScalingResult | None = None,
    seed: SeedLike = None,
    with_choice: bool = False,
) -> UndirectedMatching | tuple[UndirectedMatching, IndexArray]:
    """Karp–Sipser-exact heuristic on the undirected 1-out choice graph.

    The undirected analogue of TwoSidedMatch: each vertex picks one
    neighbour, and the out-one-chasing Karp–Sipser of Algorithm 4 runs on
    the functional graph (Phase 2 pairs the remaining cycle edges
    ``(u, choice[u])`` greedily — on a cycle these alternate, matching
    everything except possibly one vertex per odd cycle).
    """
    _require_symmetric(graph)
    rng = rng_from(seed)
    if scaling is None:
        scaling = scale_symmetric(graph, iterations)
    choice = _scaled_choices(graph, scaling.dr, rng)

    n = graph.nrows
    mate = np.full(n, NIL, dtype=np.int64)
    mark = np.ones(n, dtype=bool)
    deg = np.ones(n, dtype=np.int64)
    pointers = np.flatnonzero(choice != NIL)
    targets = choice[pointers]
    mark[targets] = False
    not_mutual = choice[targets] != pointers
    np.add.at(deg, targets[not_mutual], 1)

    # Phase 1: out-one chains (identical logic to the bipartite engine).
    for u in range(n):
        if not mark[u] or choice[u] == NIL:
            continue
        curr = int(u)
        while curr != NIL:
            nbr = int(choice[curr])
            if nbr == NIL or mate[nbr] != NIL:
                break
            mate[nbr] = curr
            mate[curr] = nbr
            nxt = int(choice[nbr])
            curr = NIL
            if nxt != NIL and mate[nxt] == NIL:
                deg[nxt] -= 1
                if deg[nxt] == 1:
                    curr = nxt

    # Phase 2: residual components are 2-cliques and cycles (possibly of
    # odd length — the graph is not bipartite).  Walk each cycle along the
    # choice pointers pairing consecutive edges: even cycles match
    # perfectly, odd cycles leave exactly one vertex, which is the maximum
    # on the choice subgraph.
    for u in range(n):
        curr = int(u)
        while (
            curr != NIL
            and mate[curr] == NIL
            and choice[curr] != NIL
            and mate[int(choice[curr])] == NIL
        ):
            v = int(choice[curr])
            mate[curr] = v
            mate[v] = curr
            curr = int(choice[v])

    matching = UndirectedMatching(mate)
    if with_choice:
        return matching, choice
    return matching
