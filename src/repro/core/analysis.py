"""Per-instance theoretical analysis of the heuristics.

Theorem 1's proof works by bounding, for every column ``j``, the
probability that *no* row picks it:

.. math:: P(j\\ \\text{unmatched}) \\;=\\; \\prod_{i \\in A_{*j}} (1 - p_i(j)),
          \\qquad p_i(j) = \\frac{s_{ij}}{\\sum_{k} s_{ik}},

and summing.  Given an actual scaling (converged or not), these
quantities are *computable exactly*, which turns the theorem into a
per-instance, per-scaling prediction:

* :func:`one_sided_miss_probabilities` — P(unmatched) per column;
* :func:`expected_one_sided_cardinality` — the exact expectation of
  ``|M|`` for OneSidedMatch under that scaling (no sampling involved);
* :func:`one_sided_lower_bound` — Theorem 1's closed-form bound
  ``sum_j 1 - (1 - alpha_j/d_j)^{d_j}`` from the column sums, the
  arithmetic–geometric step of the proof.

The tests validate the expectation against Monte-Carlo runs and the bound
chain ``lower_bound <= expectation`` plus ``expectation -> n(1-1/e)`` on
the all-ones matrix.
"""

from __future__ import annotations

import numpy as np

from repro._typing import FloatArray
from repro.graph.csr import BipartiteGraph
from repro.parallel.reduction import segment_sums
from repro.scaling.result import ScalingResult

__all__ = [
    "one_sided_miss_probabilities",
    "expected_one_sided_cardinality",
    "one_sided_lower_bound",
]


def _row_pick_probabilities(
    graph: BipartiteGraph, dr: FloatArray, dc: FloatArray
) -> FloatArray:
    """Per-edge probability (CSR order) that the edge's row picks it."""
    dr = np.asarray(dr, dtype=np.float64)
    dc = np.asarray(dc, dtype=np.float64)
    weights = dc[graph.col_ind]  # within a row, dr[i] cancels
    row_tot = segment_sums(weights, graph.row_ptr)
    denom = row_tot[graph.row_of_edge()]
    probs = np.zeros_like(weights)
    np.divide(weights, denom, out=probs, where=denom > 0)
    return probs


def one_sided_miss_probabilities(
    graph: BipartiteGraph, scaling: ScalingResult
) -> FloatArray:
    """Exact P(column j unmatched) under OneSidedMatch with *scaling*.

    Computed in log-space for numerical robustness; a column with an
    edge of probability 1 (a degree-one row) gets exactly 0.
    """
    probs = _row_pick_probabilities(graph, scaling.dr, scaling.dc)
    # log(1 - p); p == 1 -> -inf -> exp(.) == 0, which is correct.
    with np.errstate(divide="ignore"):
        log_miss = np.log1p(-np.minimum(probs, 1.0))
    # Rearrange per-edge values from CSR to CSC order: CSC's row_ind was
    # built by a stable argsort of col_ind, replicate that permutation.
    order = np.argsort(graph.col_ind, kind="stable")
    col_log = segment_sums(log_miss[order], graph.col_ptr)
    miss = np.exp(col_log)
    miss[graph.col_degrees() == 0] = 1.0
    return miss


def expected_one_sided_cardinality(
    graph: BipartiteGraph, scaling: ScalingResult
) -> float:
    """Exact ``E[|M|]`` of OneSidedMatch under *scaling*.

    ``|M|`` equals the number of columns picked by at least one row, so
    the expectation is ``sum_j (1 - P(j unmatched))`` by linearity —
    the identity at the heart of Theorem 1's proof.
    """
    miss = one_sided_miss_probabilities(graph, scaling)
    return float((1.0 - miss).sum())


def one_sided_lower_bound(
    graph: BipartiteGraph, scaling: ScalingResult
) -> float:
    """Theorem 1's closed-form lower bound on ``E[|M|]``.

    For column ``j`` with degree ``d_j`` and scaled column sum
    ``alpha_j`` (of the row-normalised probabilities), the AM–GM step
    gives ``P(miss) <= (1 - alpha_j / d_j)^{d_j}``, hence

    .. math:: E[|M|] \\ge \\sum_j 1 - (1 - \\alpha_j/d_j)^{d_j}.

    With a converged scaling every ``alpha_j = 1`` and the right side is
    at least ``n (1 - 1/e)``.
    """
    probs = _row_pick_probabilities(graph, scaling.dr, scaling.dc)
    order = np.argsort(graph.col_ind, kind="stable")
    alpha = segment_sums(probs[order], graph.col_ptr)
    degs = graph.col_degrees().astype(np.float64)
    nonempty = degs > 0
    ratio = np.zeros_like(alpha)
    ratio[nonempty] = alpha[nonempty] / degs[nonempty]
    bound = np.zeros_like(alpha)
    bound[nonempty] = 1.0 - (1.0 - ratio[nonempty]) ** degs[nonempty]
    return float(bound.sum())
