"""Random 1-out bipartite graphs (the structure behind Conjecture 1).

On the all-ones matrix the scaled entries are all ``1/n``, so the choice
subgraph of ``TwoSidedMatch`` is exactly Walkup's *random 1-out bipartite
graph*: each of the ``2n`` vertices picks one uniformly random neighbour.
Karoński–Pittel (via Meir–Moon's tree analysis) put the maximum matching
size of that graph at ``2(1 - ρ)n ≈ 0.866 n`` where ``ρ e^ρ = 1``.

These helpers sample such graphs directly — O(n), without materialising
the dense matrix — and measure their maximum matchings, providing the
empirical support for Conjecture 1 (``benchmarks/bench_conjecture.py``).
"""

from __future__ import annotations

import numpy as np

from repro._typing import IndexArray, SeedLike, rng_from
from repro.graph.csr import BipartiteGraph
from repro.core.karp_sipser_mt import choice_graph, karp_sipser_mt

__all__ = [
    "sample_uniform_one_out",
    "one_out_graph",
    "one_out_max_matching_size",
]


def sample_uniform_one_out(
    n: int, seed: SeedLike = None
) -> tuple[IndexArray, IndexArray]:
    """Choice arrays of a uniform random 1-out bipartite graph on n + n."""
    rng = rng_from(seed)
    row_choice = rng.integers(0, n, size=n, dtype=np.int64)
    col_choice = rng.integers(0, n, size=n, dtype=np.int64)
    return row_choice, col_choice


def one_out_graph(n: int, seed: SeedLike = None) -> BipartiteGraph:
    """A uniform random 1-out bipartite graph as a materialised graph."""
    row_choice, col_choice = sample_uniform_one_out(n, seed)
    return choice_graph(row_choice, col_choice)


def one_out_max_matching_size(n: int, seed: SeedLike = None) -> int:
    """Maximum matching cardinality of one sampled 1-out graph.

    Uses ``KarpSipserMT`` — exact on choice subgraphs (Lemmas 1–3) and
    linear time, so large n are cheap to sample.
    """
    row_choice, col_choice = sample_uniform_one_out(n, seed)
    return karp_sipser_mt(row_choice, col_choice).cardinality
