"""``TwoSidedMatch`` — the paper's Algorithm 3.

Both sides choose: every row picks a column and every column picks a row
(probabilities from the scaled matrix), giving a ≤ 2n-edge "choice
subgraph" on which Karp–Sipser is exact (Lemmas 1–3); ``KarpSipserMT``
extracts a maximum matching of the subgraph in linear time.  Conjecture 1
puts the matching size at ``2(1 - ρ)n ≈ 0.866 n`` asymptotically on
matrices with total support.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry as _tm
from repro._typing import IndexArray, SeedLike, rng_from
from repro.constants import TWO_SIDED_GUARANTEE
from repro.core.onesided import _rung_guarantee
from repro.errors import ShapeError
from repro.graph.csr import BipartiteGraph
from repro.matching.matching import NIL, Matching
from repro.parallel.backends import Backend, get_backend
from repro.parallel.simthread import SchedulePolicy
from repro.scaling.result import ScalingResult
from repro.scaling.sinkhorn_knopp import scale_sinkhorn_knopp
from repro.core.choice import scaled_col_choices, scaled_row_choices
from repro.core.karp_sipser_mt import (
    KarpSipserMTStats,
    karp_sipser_mt,
    karp_sipser_mt_parallel,
    karp_sipser_mt_simulated,
    karp_sipser_mt_threaded,
    karp_sipser_mt_vectorized,
)

__all__ = ["TwoSidedResult", "two_sided_match"]


@dataclass(frozen=True)
class TwoSidedResult:
    """Output of :func:`two_sided_match`."""

    matching: Matching
    scaling: ScalingResult
    #: Column chosen by each row (NIL for empty rows).
    row_choice: IndexArray
    #: Row chosen by each column (NIL for empty columns).
    col_choice: IndexArray
    #: Karp–Sipser phase counters (None for engines that do not track them).
    ks_stats: KarpSipserMTStats | None = None
    #: The auction refinement when ``quality="exact"`` was requested
    #: (``matching`` is then the refined, provably maximum matching).
    refined: "object | None" = None

    @property
    def cardinality(self) -> int:
        return self.matching.cardinality

    @property
    def guarantee(self) -> float:
        """Best attainable quality floor for the scaling rung used.

        ``"full"`` rung: Conjecture 1's ``2(1 - ρ)``.  ``"capped"``
        rung: the conservative Section 3.3 one-sided relaxed bound (no
        relaxed form of Conjecture 1 is known, and TwoSided empirically
        dominates OneSided at equal scaling).  ``"uniform"`` rung: 0.
        After an exact refinement the floor is 1 — the matching is
        maximum, full stop.
        """
        if self.refined is not None:
            return 1.0
        return _rung_guarantee(self.scaling, TWO_SIDED_GUARANTEE)


def two_sided_match(
    graph: BipartiteGraph,
    iterations: int = 5,
    *,
    scaling: ScalingResult | None = None,
    seed: SeedLike = None,
    backend: Backend | str | None = None,
    engine: str = "serial",
    n_threads: int = 4,
    sim_policy: SchedulePolicy | str = SchedulePolicy.RANDOM,
    deadline: float | None = None,
    quality: str = "heuristic",
) -> TwoSidedResult:
    """Run TwoSidedMatch on *graph*.

    Parameters
    ----------
    graph:
        The bipartite graph / (0,1) matrix.
    iterations:
        Sinkhorn–Knopp iterations when *scaling* is not supplied.
    scaling:
        Reuse a precomputed scaling.
    seed:
        Randomness for the row and column choices.
    backend:
        Parallel backend for scaling and choice sampling.
    engine:
        Karp–Sipser engine for the choice subgraph: ``"serial"``
        (reference), ``"vectorized"`` (round-based numpy — the fast path
        for large instances), ``"parallel"`` (the vectorized rounds with
        the phase scans on *backend* — bitwise identical to
        ``"vectorized"``), ``"simulated"`` (*n_threads* simulated
        threads under *sim_policy* interleaving — the concurrency-
        verification path), or ``"threaded"`` (real Python threads with
        locked atomics).
    n_threads:
        Thread count for the non-serial engines.
    sim_policy:
        Interleaving policy for the simulated engine.
    deadline:
        Total wall-clock budget in seconds for this call, enforced per
        chunk attempt and retry backoff when *backend* is a
        :class:`~repro.resilience.ResilientBackend` (typed
        :class:`~repro.errors.DeadlineExceededError` on exhaustion);
        advisory otherwise.  Nested inside an ambient budget the
        tighter one wins.
    quality:
        ``"heuristic"`` (default) returns the choice-subgraph matching
        as-is; ``"exact"`` refines it to a provably maximum matching of
        the *full* graph with the ε-scaling auction (warm-started from
        the heuristic result and its scaling duals).

    Returns
    -------
    TwoSidedResult
        A matching that is maximum *on the choice subgraph* (for every
        engine and schedule) — or maximum on the whole graph under
        ``quality="exact"`` — the scaling, and the raw choices.
    """
    from repro.resilience.deadline import request_deadline

    if quality not in ("heuristic", "exact"):
        raise ValueError(
            f"quality must be 'heuristic' or 'exact', got {quality!r}"
        )
    be = get_backend(backend)
    rng = rng_from(seed)
    with request_deadline(deadline), _tm.span(
        "core.two_sided_match", engine=engine
    ) as sp:
        if scaling is None:
            scaling = scale_sinkhorn_knopp(graph, iterations, backend=be)

        with _tm.span("choices"):
            row_choice = scaled_row_choices(
                graph, scaling.dr, scaling.dc, rng, backend=be
            )
            col_choice = scaled_col_choices(
                graph, scaling.dr, scaling.dc, rng, backend=be
            )

        stats: KarpSipserMTStats | None = None
        if engine == "serial":
            matching, stats = karp_sipser_mt(
                row_choice, col_choice, with_stats=True
            )
        elif engine == "vectorized":
            matching = karp_sipser_mt_vectorized(row_choice, col_choice)
        elif engine == "parallel":
            matching = karp_sipser_mt_parallel(
                row_choice, col_choice, backend=be
            )
        elif engine == "simulated":
            matching, stats = karp_sipser_mt_simulated(
                row_choice,
                col_choice,
                n_threads,
                policy=sim_policy,
                seed=rng,
                with_stats=True,
            )
        elif engine == "threaded":
            matching = karp_sipser_mt_threaded(
                row_choice, col_choice, n_threads
            )
        else:
            raise ShapeError(
                f"engine must be 'serial', 'vectorized', 'parallel', "
                f"'simulated' or 'threaded', got {engine!r}"
            )

        if _tm.enabled():
            # A "mutual pair" row chose a column that chose it back — a
            # 2-clique the Karp–Sipser phase keeps with certainty.
            rows = np.flatnonzero(row_choice != NIL)
            mutual = int(np.count_nonzero(col_choice[row_choice[rows]] == rows))
            _tm.incr("twosided.runs")
            _tm.incr("twosided.mutual_pairs", mutual)
            _tm.incr(
                "twosided.choices",
                int(rows.size + np.count_nonzero(col_choice != NIL)),
            )
            sp.set(
                cardinality=matching.cardinality,
                mutual_pairs=mutual,
                rung=scaling.rung,
            )

        refined = None
        if quality == "exact":
            from repro.matching.exact.auction import auction_match

            refined = auction_match(
                graph, initial=matching, scaling=scaling, backend=be,
                seed=rng,
            )
            matching = refined.matching

    return TwoSidedResult(
        matching=matching,
        scaling=scaling,
        row_choice=row_choice,
        col_choice=col_choice,
        ks_stats=stats,
        refined=refined,
    )
