"""Command-line interface for the library.

Subcommands::

    python -m repro match    <file.mtx> [--method two-sided] [--iterations 5]
    python -m repro sprank   <file.mtx>
    python -m repro scale    <file.mtx> [--iterations 10] [--method sk|ruiz]
    python -m repro dm       <file.mtx>
    python -m repro generate <kind> --n 1000 [--degree 4] [--out g.mtx]
    python -m repro info     <file.mtx>
    python -m repro telemetry <file.mtx> [--method two-sided] [--trace]
                              [--jsonl trace.jsonl]
    python -m repro chaos    [--n 600] [--deadline 0.3] [--smoke]
    python -m repro serve    [--backend shm:4] [--soak 200] [--overload 2]
                             [--chaos] [--graph-cache-cap 32]
                             [--max-streams 8] [--listen unix:/tmp/d.sock]
    python -m repro route    [--daemons 3] [--requests 60] [--kill-one]
    python -m repro stream   [--n 10000] [--churn 0.01] [--batches 3]
                             [--target 0.6] [--smoke]
    python -m repro shard    [--n 20000] [--shards 3] [--check]

Matrices are MatrixMarket coordinate files (``.mtx``) or the library's
``.npz`` cache format (auto-detected by extension).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np


def _load(path: str):
    from repro.graph.io import load_npz, read_matrix_market

    p = Path(path)
    if p.suffix == ".npz":
        return load_npz(p)
    return read_matrix_market(p)


def _save(graph, path: str) -> None:
    from repro.graph.io import save_npz, write_matrix_market

    p = Path(path)
    if p.suffix == ".npz":
        save_npz(graph, p)
    else:
        write_matrix_market(graph, p)


def cmd_info(args: argparse.Namespace) -> int:
    from repro.graph.properties import degree_statistics

    g = _load(args.matrix)
    rows, cols = degree_statistics(g)
    print(f"shape      : {g.nrows} x {g.ncols}")
    print(f"edges      : {g.nnz}")
    print(f"avg degree : {g.nnz / max(1, g.nrows):.2f}")
    print(
        f"row degrees: min {rows.minimum}, max {rows.maximum}, "
        f"var {rows.variance:.1f}, empty {rows.empty_count}"
    )
    print(
        f"col degrees: min {cols.minimum}, max {cols.maximum}, "
        f"var {cols.variance:.1f}, empty {cols.empty_count}"
    )
    return 0


def cmd_sprank(args: argparse.Namespace) -> int:
    from repro.matching import sprank

    g = _load(args.matrix)
    t0 = time.perf_counter()
    rank = sprank(g)
    dt = time.perf_counter() - t0
    print(f"sprank = {rank}  ({rank / max(1, min(g.shape)):.4f} of "
          f"min(shape); {dt:.2f}s)")
    return 0


def cmd_scale(args: argparse.Namespace) -> int:
    from repro.parallel import get_backend
    from repro.scaling import scale_ruiz, scale_sinkhorn_knopp

    g = _load(args.matrix)
    with get_backend(args.backend) as be:
        if args.method == "sk":
            res = scale_sinkhorn_knopp(
                g, args.iterations, backend=be, track_history=True
            )
        else:
            res = scale_ruiz(g, args.iterations, track_history=True)
    print(f"method     : {args.method}")
    print(f"iterations : {res.iterations}")
    print(f"final error: {res.error:.6g}")
    if res.history:
        trail = ", ".join(f"{e:.3g}" for e in res.history[:10])
        print(f"error trail: {trail}{' ...' if len(res.history) > 10 else ''}")
    if args.out:
        np.savez(args.out, dr=res.dr, dc=res.dc)
        print(f"wrote scaling vectors to {args.out}")
    return 0


def cmd_match(args: argparse.Namespace) -> int:
    from repro.core import one_sided_match, two_sided_match
    from repro.matching import (
        hopcroft_karp,
        karp_sipser,
        karp_sipser_plus,
        mc21,
        push_relabel,
    )
    from repro.matching.heuristics.greedy import greedy_edge_matching

    from repro.parallel import get_backend

    g = _load(args.matrix)
    be = get_backend(args.backend)
    t0 = time.perf_counter()
    if args.best_of > 1 and args.method in ("one-sided", "two-sided"):
        from repro.core import best_of
        from repro.scaling import scale_sinkhorn_knopp

        matching = best_of(
            g, args.best_of, method=args.method,
            scaling=scale_sinkhorn_knopp(g, args.iterations, backend=be),
            seed=args.seed,
        ).matching
    elif args.method == "one-sided":
        matching = one_sided_match(
            g, args.iterations, seed=args.seed, backend=be
        ).matching
    elif args.method == "two-sided":
        matching = two_sided_match(
            g, args.iterations, seed=args.seed, backend=be
        ).matching
    elif args.method == "karp-sipser":
        matching = karp_sipser(g, seed=args.seed)
    elif args.method == "karp-sipser-plus":
        matching = karp_sipser_plus(g, seed=args.seed)
    elif args.method == "greedy":
        matching = greedy_edge_matching(g, seed=args.seed)
    elif args.method == "hopcroft-karp":
        matching = hopcroft_karp(g)
    elif args.method == "mc21":
        matching = mc21(g)
    elif args.method == "push-relabel":
        matching = push_relabel(g)
    elif args.method == "auction":
        from repro.matching import auction_match

        matching = auction_match(g, backend=be, seed=args.seed).matching
    elif args.method == "auction-warm":
        from repro.matching import auction_match

        heur = two_sided_match(g, args.iterations, seed=args.seed, backend=be)
        matching = auction_match(
            g, initial=heur, scaling=heur.scaling, backend=be,
            seed=args.seed,
        ).matching
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown method {args.method}")
    dt = time.perf_counter() - t0
    be.close()
    matching.validate(g)
    print(f"method      : {args.method}")
    print(f"cardinality : {matching.cardinality}")
    print(f"time        : {dt:.3f}s")
    if args.quality:
        from repro.matching import sprank

        maximum = sprank(g)
        print(f"sprank      : {maximum}")
        print(f"quality     : {matching.cardinality / maximum:.4f}")
    if args.out:
        np.savez(
            args.out,
            row_match=matching.row_match,
            col_match=matching.col_match,
        )
        print(f"wrote matching to {args.out}")
    return 0


def cmd_telemetry(args: argparse.Namespace) -> int:
    """Run a heuristic with telemetry enabled and print the metric report."""
    from repro import telemetry
    from repro.core import one_sided_match, two_sided_match
    from repro.telemetry import JsonLinesSink, TableSink, render_report

    if args.repeat < 1:
        raise SystemExit("--repeat must be at least 1")
    g = _load(args.matrix)
    sinks = []
    if args.trace:
        sinks.append(TableSink())
    jsonl = None
    if args.jsonl:
        jsonl = JsonLinesSink(args.jsonl)
        sinks.append(jsonl)
    from repro.parallel import get_backend

    with telemetry.session(*sinks) as registry, \
            get_backend(args.backend) as be:
        for rep in range(args.repeat):
            seed = args.seed + rep
            if args.method == "one-sided":
                result = one_sided_match(
                    g, args.iterations, seed=seed, backend=be
                )
            else:
                result = two_sided_match(
                    g, args.iterations, seed=seed, backend=be,
                    engine=args.engine,
                )
        report = render_report(registry.snapshot())
    if jsonl is not None:
        jsonl.close()
        print(f"wrote event trace to {args.jsonl}")
    print(report, end="")
    print(f"cardinality : {result.cardinality}  (last of {args.repeat} run(s))")
    return 0


def _kernel_bench_views(name, graph, rng):
    """Synthetic full-size views for micro-benching kernel *name*."""
    import numpy as np

    from repro.matching.matching import NIL

    nrows, ncols = graph.nrows, graph.ncols
    nnz = int(graph.row_ptr[-1])
    total = nrows + ncols
    if name == "sk_sweep":
        return ncols, {
            "ptr": graph.col_ptr, "ind": graph.row_ind,
            "opp": rng.random(nrows) + 0.5,
            "out": np.zeros(ncols),
        }, None
    if name == "sk_sweep_err":
        return ncols, {
            "ptr": graph.col_ptr, "ind": graph.row_ind,
            "opp": rng.random(nrows) + 0.5,
            "mine": rng.random(ncols) + 0.5,
            "out": np.zeros(ncols),
        }, None
    if name == "choice_scaled":
        return nrows, {
            "ptr": graph.row_ptr, "ind": graph.col_ind,
            "opp": rng.random(ncols) + 0.5,
            "draws": 1.0 - rng.random(nrows),
            "out": np.zeros(nrows, dtype=np.int64),
        }, None
    if name == "choice_flat":
        return nrows, {
            "ptr": graph.row_ptr, "ind": graph.col_ind,
            "weights": rng.random(nnz) + 0.5,
            "draws": 1.0 - rng.random(nrows),
            "out": np.zeros(nrows, dtype=np.int64),
        }, None
    if name == "ks_phase1_scan":
        return nrows, {
            "alive": np.ones(nrows, dtype=bool),
            "in_count": np.zeros(nrows, dtype=np.int64),
            "match": np.full(total, NIL, dtype=np.int64),
            "choice": rng.integers(-1, total, size=total, dtype=np.int64),
            "cand": np.zeros(nrows, dtype=bool),
        }, None
    if name == "ks_phase2_scan":
        return ncols, {
            "match": np.full(total, NIL, dtype=np.int64),
            "choice": rng.integers(-1, total, size=total, dtype=np.int64),
            "ok": np.zeros(ncols, dtype=bool),
        }, {"nrows": nrows}
    if name == "auction_bid":
        return nrows, {
            "ptr": graph.row_ptr, "ind": graph.col_ind,
            "prices": rng.random(ncols),
            "bid_col": np.zeros(nrows, dtype=np.int64),
            "bid_val": np.zeros(nrows, dtype=np.float64),
        }, {"eps": 0.125, "dead": 1e12}
    raise SystemExit(f"no bench harness for kernel {name!r}")


def cmd_kernels(args: argparse.Namespace) -> int:
    """Report per-kernel implementation status, plus a micro-benchmark."""
    import time

    import numpy as np

    from repro.graph.generators import sprand
    from repro.parallel import (
        kernel_impl,
        kernel_impls,
        native_available,
        native_cache_dir,
        run_kernel,
        warm_compile,
    )
    from repro.parallel import native as native_mod

    have = native_available()
    warm_compile()  # resolves every kernel's status (compiles if it can)
    rows = kernel_impls()
    mode = rows[0]["mode"] if rows else "auto"
    resolved = "native" if any(r["impl"] == "native" for r in rows) else "numpy"
    print("kernel implementation tier")
    print("--------------------------")
    detail = "" if have else "  (numba not installed)"
    print(f"selected mode : {mode}  -> resolves to {resolved}{detail}")
    version = native_mod._NUMBA_VERSION if have else None
    print(f"numba         : {version or ('available' if have else 'absent')}")
    print(f"cache dir     : {native_cache_dir()}")
    print()

    timings: dict[str, tuple[float, float | None]] = {}
    if not args.no_bench:
        graph = sprand(args.n, 4.0, seed=0)
        for row in rows:
            name = row["kernel"]
            rng = np.random.default_rng(1)
            n, arrays, scalars = _kernel_bench_views(name, graph, rng)

            def best_of(impl: str) -> float:
                with kernel_impl(impl):
                    run_kernel(name, n, arrays, scalars=scalars)  # warm
                    best = float("inf")
                    for _ in range(args.repeats):
                        t0 = time.perf_counter()
                        run_kernel(name, n, arrays, scalars=scalars)
                        best = min(best, time.perf_counter() - t0)
                return best

            numpy_s = best_of("numpy")
            native_s = best_of("native") if row["status"] == "ready" else None
            timings[name] = (numpy_s, native_s)

    header = (
        f"{'kernel':<16} {'impl':<7} {'status':<9} {'compile_s':>9} "
        f"{'numpy_ms':>9} {'native_ms':>10} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        name = row["kernel"]
        comp = row["compile_seconds"]
        comp_s = f"{comp:9.3f}" if comp is not None else f"{'-':>9}"
        numpy_s, native_s = timings.get(name, (None, None))
        np_ms = f"{numpy_s * 1e3:9.3f}" if numpy_s is not None else f"{'-':>9}"
        if native_s is not None and numpy_s is not None:
            nat_ms = f"{native_s * 1e3:10.3f}"
            speed = f"{numpy_s / native_s:7.2f}x"
        else:
            nat_ms, speed = f"{'-':>10}", f"{'-':>8}"
        print(
            f"{name:<16} {row['impl']:<7} {row['status']:<9} {comp_s} "
            f"{np_ms} {nat_ms} {speed}"
        )
    fallbacks = [r for r in rows if r["status"] == "fallback"]
    if fallbacks:
        print()
        for row in fallbacks:
            print(f"note: {row['kernel']} fell back — {row['detail']}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run the chaos matrix and print the cell table (exit 1 on failure)."""
    from repro.resilience import run_chaos

    backends = (
        ("serial",)
        if args.smoke
        else ("serial", "threads:2", "processes:2", "shm:2")
    )
    n = min(args.n, 200) if args.smoke else args.n
    report = run_chaos(
        n,
        backends=backends,
        deadline=args.deadline,
        max_retries=args.max_retries,
        seed=args.seed,
    )
    print(report.render())
    return 0 if report.passed else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the matching service: JSON-lines daemon or soak mode.

    Without ``--soak`` this reads JSON-lines requests from stdin until
    EOF (see ``repro.serve.daemon``).  With ``--soak N`` it hammers an
    in-process server with N requests at ``--overload`` times capacity
    and exits 1 if the service contract is violated; ``--chaos`` adds a
    fault storm underneath.  ``--backend`` defaults from the
    ``REPRO_BACKEND`` environment variable (serial when unset).
    """
    import os

    from repro.serve import ServerConfig, run_soak, serve_forever

    backend = args.backend
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND") or None
    if args.soak is None:
        if args.listen:
            import json as _json

            from repro.serve.net import serve_listen

            def _ready(address: str) -> None:
                print(_json.dumps({"event": "serve.listening",
                                   "address": address}), flush=True)

            return serve_listen(
                args.listen,
                backend,
                graph_cache_cap=args.graph_cache_cap,
                max_streams=args.max_streams,
                journal_dir=args.journal,
                recover=args.recover,
                checkpoint_every=args.checkpoint_every,
                acked_cap=args.acked_cap,
                ready=_ready,
            )
        if args.supervise and args.journal:
            import sys as _sys

            from repro.serve.recovery import supervise

            child = [
                _sys.executable, "-m", "repro", "serve",
                "--journal", args.journal,
                "--checkpoint-every", str(args.checkpoint_every),
                "--max-streams", str(args.max_streams),
            ]
            if args.backend:
                child += ["--backend", args.backend]
            if args.recover:
                child.append("--recover")
            return supervise(
                child,
                journal_dir=args.journal,
                max_restarts=args.supervise,
            )
        return serve_forever(
            backend,
            graph_cache_cap=args.graph_cache_cap,
            max_streams=args.max_streams,
            journal_dir=args.journal,
            recover=args.recover,
            checkpoint_every=args.checkpoint_every,
            acked_cap=args.acked_cap,
        )
    config = ServerConfig(
        default_deadline=args.deadline,
        chunk_deadline=max(0.2, args.deadline / 2),
        max_queue=args.max_queue,
    )
    fault_plan = None
    if args.chaos:
        from repro.resilience.chaos import standard_schedules

        fault_plan = standard_schedules()["storm"]
    report = run_soak(
        args.soak,
        backend=backend,
        n=args.n,
        deadline=args.deadline,
        overload=args.overload,
        seed=args.seed,
        config=config,
        fault_plan=fault_plan,
    )
    print(report.render())
    return 0 if report.passed else 1


def cmd_route(args: argparse.Namespace) -> int:
    """Run the multi-daemon router demo soak.

    Starts ``--daemons`` socket daemons behind consistent-hash routing,
    routes ``--requests`` mixed match/stream requests through them
    (``--kill-one`` SIGKILLs a daemon mid-soak to demonstrate
    journal-recovery failover), audits that every request was answered,
    and prints the router health summary.  Exits 1 if any request was
    lost or a stream session diverged.
    """
    import json
    import tempfile

    from repro.serve.quota import TenantQuotas
    from repro.serve.router import Router

    base = args.dir or tempfile.mkdtemp(prefix="repro-route-")
    graph = {"kind": "sprand", "n": args.n, "degree": 4.0, "seed": args.seed}
    failures = 0
    with Router(
        args.daemons,
        base,
        backend=args.backend,
        quotas=TenantQuotas(limit=args.quota),
    ) as router:
        opened = router.request({"op": "stream_open", "graph": graph})
        handle = opened["handle"]
        kill_at = args.requests // 2 if args.kill_one else -1
        for i in range(args.requests):
            if i == kill_at:
                victim = router._node_by_name(handle.split(":", 1)[0])
                if victim.alive():
                    victim.proc.kill()
                    print(f"killed {victim.name} (pid {victim.pid})")
            if i % 3 == 0:
                response = router.request(
                    {"op": "update", "handle": handle,
                     "add": {"rows": [i % args.n],
                             "cols": [(i * 7) % args.n]}}
                )
            elif i % 3 == 1:
                response = router.request({"op": "rematch", "handle": handle})
            else:
                response = router.request(
                    {"op": "match", "graph": graph, "iterations": 2,
                     "seed": args.seed + i}
                )
            if not response.get("ok", False):
                failures += 1
        router.request({"op": "stream_close", "handle": handle})
        health = router.health()
    print(json.dumps(health, indent=2))
    print(
        f"routed {args.requests} requests, {failures} lost;"
        f" restarts: "
        + ", ".join(
            f"{n['name']}={n['restarts']}" for n in health["nodes"]
        )
    )
    return 0 if failures == 0 else 1


def cmd_stream(args: argparse.Namespace) -> int:
    """Run the dynamic-graph churn demo and print the timing report.

    Exercises the ``repro.stream`` layer end to end: build a graph,
    churn its edges in batches, repair the matching incrementally, and
    compare against cold from-scratch rematches of the same epochs.
    Exits 1 if any batch's incremental guarantee disagreed with the
    cold one (that equality is the subsystem's core contract).
    """
    from repro.stream import run_churn

    n = min(args.n, 4000) if args.smoke else args.n
    report = run_churn(
        n,
        churn_fraction=args.churn,
        batches=args.batches,
        target_quality=args.target,
        seed=args.seed,
        backend=args.backend,
        compare_cold=not args.no_cold,
    )
    print(f"n               : {report.n} (degree {report.degree} perms "
          f"+ extras)")
    print(f"churn           : {report.churn_fraction:.2%} of edges x "
          f"{report.batches} batches")
    print(f"update          : {report.update_seconds * 1e3:8.1f} ms/batch")
    print(f"incremental     : "
          f"{report.incremental_seconds * 1e3:8.1f} ms/batch")
    if not args.no_cold:
        print(f"cold rematch    : {report.cold_seconds * 1e3:8.1f} ms/batch")
        print(f"speedup         : {report.speedup:8.2f}x "
              f"(cold / (update + incremental))")
        print(f"guarantees match: {report.guarantees_match}")
    print(f"guarantee       : {report.guarantee:.4f}")
    print(f"cardinality     : {report.cardinality}")
    return 0 if (args.no_cold or report.guarantees_match) else 1


def cmd_shard(args: argparse.Namespace) -> int:
    """Run the sharded matching pipeline and report partition/merge stats.

    Generates a random graph, partitions it into ``--shards`` chunk-aligned
    shards, and runs the full sharded pipeline (2-D Sinkhorn–Knopp, local
    choices, BSP Karp–Sipser reconciliation) on the in-process tier.  With
    ``--check`` it also runs the unsharded serial pipeline and exits 1
    unless the sharded matching, scaling vectors, and §3.3 guarantee are
    bitwise identical — the subsystem's core contract.
    """
    from repro.core import two_sided_match
    from repro.graph.generators import sprand
    from repro.shard import plan_shards, shard_match

    g = sprand(args.n, args.degree, seed=args.seed)
    plan = plan_shards(g, args.shards)
    t0 = time.perf_counter()
    res = shard_match(
        g, args.shards, args.iterations, seed=args.seed, plan=plan
    )
    dt = time.perf_counter() - t0
    print(f"graph        : {g.nrows} x {g.ncols}, {g.nnz} edges")
    print(f"shards       : {plan.n_shards} "
          f"(max held nnz {plan.max_held_nnz}, "
          f"boundary edges {plan.boundary_edges})")
    print(f"cardinality  : {res.cardinality}")
    print(f"guarantee    : {res.guarantee:.4f}")
    print(f"ks rounds    : {res.rounds}")
    print(f"time         : {dt:.3f}s")
    if not args.check:
        return 0
    ref = two_sided_match(
        g, args.iterations, seed=args.seed, engine="vectorized"
    )
    same = (
        np.array_equal(res.matching.row_match, ref.matching.row_match)
        and np.array_equal(res.scaling.dr, ref.scaling.dr)
        and np.array_equal(res.scaling.dc, ref.scaling.dc)
        and res.guarantee == ref.guarantee
    )
    print(f"serial check : {'bitwise-identical' if same else 'MISMATCH'}")
    return 0 if same else 1


def cmd_dm(args: argparse.Namespace) -> int:
    from repro.graph.dm import CoarseDM, dulmage_mendelsohn

    g = _load(args.matrix)
    dm = dulmage_mendelsohn(g)
    print(f"sprank          : {dm.sprank}")
    for name, block in (("H", CoarseDM.H_BLOCK), ("S", CoarseDM.S_BLOCK),
                        ("V", CoarseDM.V_BLOCK)):
        print(
            f"block {name}         : {dm.rows_of(block).size} rows x "
            f"{dm.cols_of(block).size} cols"
        )
    print(f"fine blocks in S: {dm.n_scc}")
    print(f"matchable edges : {int(dm.matchable_edges.sum())} / {g.nnz}")
    print(f"total support   : {dm.total_support}")
    print(f"fully indecomp. : {dm.fully_indecomposable}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.graph import generators, suite

    kind = args.kind
    if kind in suite.SUITE_NAMES:
        g = suite.suite_instance(kind, n=args.n, seed=args.seed)
    elif kind == "sprand":
        g = generators.sprand(args.n, args.degree, seed=args.seed)
    elif kind == "adversarial":
        g = __import__(
            "repro.graph.adversarial", fromlist=["karp_sipser_adversarial"]
        ).karp_sipser_adversarial(args.n, args.k)
    elif kind == "fully-indecomposable":
        g = generators.fully_indecomposable(args.n, args.degree, seed=args.seed)
    elif kind == "one-out":
        from repro.core.oneout import one_out_graph

        g = one_out_graph(args.n, seed=args.seed)
    else:
        raise SystemExit(
            f"unknown kind {kind!r}; options: sprand, adversarial, "
            f"fully-indecomposable, one-out, or a suite instance "
            f"({', '.join(suite.SUITE_NAMES)})"
        )
    print(f"generated {kind}: {g.nrows} x {g.ncols}, {g.nnz} edges")
    if args.out:
        _save(g, args.out)
        print(f"wrote {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Bipartite matching heuristics with quality guarantees.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="matrix summary")
    p_info.add_argument("matrix")
    p_info.set_defaults(fn=cmd_info)

    p_rank = sub.add_parser("sprank", help="structural rank (exact)")
    p_rank.add_argument("matrix")
    p_rank.set_defaults(fn=cmd_sprank)

    p_scale = sub.add_parser("scale", help="doubly stochastic scaling")
    p_scale.add_argument("matrix")
    p_scale.add_argument("--iterations", type=int, default=10)
    p_scale.add_argument("--method", choices=["sk", "ruiz"], default="sk")
    p_scale.add_argument(
        "--backend", default=None,
        help="parallel backend spec (e.g. threads:4, shm:2); sk only",
    )
    p_scale.add_argument("--out", default=None)
    p_scale.set_defaults(fn=cmd_scale)

    p_match = sub.add_parser("match", help="compute a matching")
    p_match.add_argument("matrix")
    p_match.add_argument(
        "--method",
        choices=[
            "one-sided", "two-sided", "karp-sipser", "karp-sipser-plus",
            "greedy", "hopcroft-karp", "mc21", "push-relabel",
            "auction", "auction-warm",
        ],
        default="two-sided",
    )
    p_match.add_argument("--iterations", type=int, default=5)
    p_match.add_argument("--seed", type=int, default=0)
    p_match.add_argument(
        "--backend", default=None,
        help="parallel backend spec (e.g. threads:4, shm:2); "
             "one-/two-sided only",
    )
    p_match.add_argument(
        "--best-of", type=int, default=1, dest="best_of",
        help="run the randomized heuristic K times and keep the best",
    )
    p_match.add_argument(
        "--quality", action="store_true",
        help="also compute sprank and report |M|/sprank",
    )
    p_match.add_argument("--out", default=None)
    p_match.set_defaults(fn=cmd_match)

    p_dm = sub.add_parser("dm", help="Dulmage-Mendelsohn decomposition")
    p_dm.add_argument("matrix")
    p_dm.set_defaults(fn=cmd_dm)

    p_tel = sub.add_parser(
        "telemetry",
        help="run a heuristic with telemetry on and report its metrics",
    )
    p_tel.add_argument("matrix")
    p_tel.add_argument(
        "--method", choices=["one-sided", "two-sided"], default="two-sided"
    )
    p_tel.add_argument("--iterations", type=int, default=5)
    p_tel.add_argument("--seed", type=int, default=0)
    p_tel.add_argument(
        "--engine",
        choices=["serial", "vectorized", "parallel", "simulated", "threaded"],
        default="serial",
    )
    p_tel.add_argument(
        "--backend", default=None,
        help="parallel backend spec (e.g. threads:4, processes:2, shm:2)",
    )
    p_tel.add_argument("--repeat", type=int, default=1)
    p_tel.add_argument(
        "--trace", action="store_true",
        help="echo events to stdout as they happen",
    )
    p_tel.add_argument(
        "--jsonl", default=None,
        help="also append the event trace to this JSON-lines file",
    )
    p_tel.set_defaults(fn=cmd_telemetry)

    p_kern = sub.add_parser(
        "kernels",
        help="per-kernel implementation report (native/numpy) + micro-bench",
    )
    p_kern.add_argument(
        "--n", type=int, default=20_000,
        help="graph size for the micro-benchmark (default 20000)",
    )
    p_kern.add_argument(
        "--repeats", type=int, default=3,
        help="best-of repeats per cell (default 3)",
    )
    p_kern.add_argument(
        "--no-bench", action="store_true",
        help="report implementation status only, skip timings",
    )
    p_kern.set_defaults(fn=cmd_kernels)

    p_chaos = sub.add_parser(
        "chaos",
        help="fault-injection sweep over the backend matrix",
    )
    p_chaos.add_argument("--n", type=int, default=600)
    p_chaos.add_argument("--deadline", type=float, default=0.3)
    p_chaos.add_argument("--max-retries", type=int, default=3,
                         dest="max_retries")
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument(
        "--smoke", action="store_true",
        help="small serial-only sweep (the CI smoke configuration)",
    )
    p_chaos.set_defaults(fn=cmd_chaos)

    p_serve = sub.add_parser(
        "serve",
        help="matching service: JSON-lines daemon, or --soak N overload test",
    )
    p_serve.add_argument(
        "--backend", default=None,
        help="backend spec (e.g. shm:4); default: $REPRO_BACKEND or serial",
    )
    p_serve.add_argument(
        "--soak", type=int, default=None, metavar="N",
        help="soak mode: submit N requests at --overload x capacity, "
             "audit the service contract, exit 1 on violation",
    )
    p_serve.add_argument(
        "--overload", type=float, default=2.0,
        help="client threads as a multiple of serving capacity (soak mode)",
    )
    p_serve.add_argument(
        "--chaos", action="store_true",
        help="inject the storm fault schedule during the soak",
    )
    p_serve.add_argument("--n", type=int, default=1500,
                         help="soak graph size")
    p_serve.add_argument("--deadline", type=float, default=1.0,
                         help="per-request budget in seconds")
    p_serve.add_argument("--max-queue", type=int, default=16,
                         dest="max_queue")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--graph-cache-cap", type=int, default=32, dest="graph_cache_cap",
        help="LRU cap on the daemon's spec->graph cache",
    )
    p_serve.add_argument(
        "--max-streams", type=int, default=8, dest="max_streams",
        help="max concurrently open dynamic-graph handles (daemon mode)",
    )
    p_serve.add_argument(
        "--journal", default=None, metavar="DIR",
        help="write-ahead journal directory: fsync every stream mutation "
             "before acknowledging it (daemon mode)",
    )
    p_serve.add_argument(
        "--recover", action="store_true",
        help="rebuild stream sessions from --journal DIR (checkpoint + "
             "replay + recertification) before serving",
    )
    p_serve.add_argument(
        "--checkpoint-every", type=int, default=64, dest="checkpoint_every",
        help="checkpoint the stream registry every N journal records",
    )
    p_serve.add_argument(
        "--supervise", type=int, default=0, metavar="N",
        help="watchdog mode: respawn a crashed daemon up to N times, "
             "recovering from --journal DIR each time",
    )
    p_serve.add_argument(
        "--acked-cap", type=int, default=1024, dest="acked_cap",
        help="LRU cap on the acknowledged-request replay cache "
             "(idempotent retries of evicted ids re-execute)",
    )
    p_serve.add_argument(
        "--listen", default=None, metavar="ADDR",
        help="serve the daemon protocol over a socket instead of stdio: "
             "'unix:/path.sock' or 'tcp:host:port' (tcp port 0 picks an "
             "ephemeral port; the bound address is printed as a JSON "
             "'serve.listening' line)",
    )
    p_serve.set_defaults(fn=cmd_serve)

    p_route = sub.add_parser(
        "route",
        help="multi-daemon router: N supervised socket daemons behind "
             "consistent-hash routing with journal-recovery failover",
    )
    p_route.add_argument(
        "--daemons", type=int, default=3,
        help="number of daemon processes to supervise",
    )
    p_route.add_argument(
        "--dir", default=None, metavar="DIR",
        help="base directory for sockets, journals, and daemon logs "
             "(default: a fresh temp directory)",
    )
    p_route.add_argument(
        "--backend", default=None,
        help="backend spec forwarded to each daemon (e.g. shm:2)",
    )
    p_route.add_argument(
        "--requests", type=int, default=60, metavar="N",
        help="demo soak: route N mixed match/stream requests, then "
             "print router health and exit",
    )
    p_route.add_argument(
        "--kill-one", action="store_true", dest="kill_one",
        help="SIGKILL one daemon mid-soak to demonstrate failover",
    )
    p_route.add_argument("--n", type=int, default=200,
                         help="graph size for the demo requests")
    p_route.add_argument("--seed", type=int, default=0)
    p_route.add_argument(
        "--quota", type=int, default=8,
        help="per-tenant in-flight request quota",
    )
    p_route.set_defaults(fn=cmd_route)

    p_stream = sub.add_parser(
        "stream",
        help="dynamic-graph churn demo: incremental vs cold rematch",
    )
    p_stream.add_argument("--n", type=int, default=10_000)
    p_stream.add_argument("--churn", type=float, default=0.01,
                          help="fraction of edges replaced per batch")
    p_stream.add_argument("--batches", type=int, default=3)
    p_stream.add_argument("--target", type=float, default=0.60,
                          help="expected-quality target to certify")
    p_stream.add_argument("--seed", type=int, default=0)
    p_stream.add_argument(
        "--backend", default=None,
        help="parallel backend spec (e.g. threads:4, shm:2)",
    )
    p_stream.add_argument(
        "--no-cold", action="store_true", dest="no_cold",
        help="skip the cold-rematch comparison (just time the updates)",
    )
    p_stream.add_argument(
        "--smoke", action="store_true",
        help="cap n at 4000 (the CI smoke configuration)",
    )
    p_stream.set_defaults(fn=cmd_stream)

    p_shard = sub.add_parser(
        "shard",
        help="sharded matching demo: partitioned scale→choice→KS with "
             "boundary reconciliation",
    )
    p_shard.add_argument(
        "--n", type=int, default=20_000,
        help="graph size; bounds snap to the choice kernel's chunk grid, "
             "so small graphs may collapse into fewer effective shards",
    )
    p_shard.add_argument("--degree", type=float, default=4.0)
    p_shard.add_argument("--shards", type=int, default=3)
    p_shard.add_argument("--iterations", type=int, default=5)
    p_shard.add_argument("--seed", type=int, default=0)
    p_shard.add_argument(
        "--check", action="store_true",
        help="also run the unsharded serial pipeline and exit 1 unless "
             "the sharded result is bitwise identical",
    )
    p_shard.set_defaults(fn=cmd_shard)

    p_gen = sub.add_parser("generate", help="generate a test matrix")
    p_gen.add_argument("kind")
    p_gen.add_argument("--n", type=int, default=1000)
    p_gen.add_argument("--degree", type=float, default=4.0)
    p_gen.add_argument("--k", type=int, default=8)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--out", default=None)
    p_gen.set_defaults(fn=cmd_generate)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
