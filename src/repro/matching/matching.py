"""The :class:`Matching` container and its validation.

A matching is stored from both sides (``row_match`` and ``col_match``),
with ``NIL = -1`` marking unmatched vertices, mirroring the paper's
``match[·]`` arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._typing import IndexArray
from repro.errors import ShapeError, ValidationError
from repro.graph.csr import BipartiteGraph

__all__ = ["Matching", "NIL"]

#: Sentinel for an unmatched vertex (the paper's NIL).
NIL: int = -1


@dataclass(frozen=True)
class Matching:
    """A (partial) matching of a bipartite graph.

    Attributes
    ----------
    row_match:
        ``row_match[i]`` is the column matched to row ``i`` or :data:`NIL`.
    col_match:
        ``col_match[j]`` is the row matched to column ``j`` or :data:`NIL`.
    """

    row_match: IndexArray
    col_match: IndexArray

    def __post_init__(self) -> None:
        rm = np.ascontiguousarray(self.row_match, dtype=np.int64)
        cm = np.ascontiguousarray(self.col_match, dtype=np.int64)
        object.__setattr__(self, "row_match", rm)
        object.__setattr__(self, "col_match", cm)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, nrows: int, ncols: int) -> "Matching":
        """The empty matching on an ``nrows × ncols`` graph."""
        return cls(
            np.full(nrows, NIL, dtype=np.int64),
            np.full(ncols, NIL, dtype=np.int64),
        )

    @classmethod
    def from_row_match(cls, row_match: object, ncols: int) -> "Matching":
        """Build from a row-side array, deriving the column side.

        Raises :class:`ValidationError` if two rows claim the same column.
        """
        rm = np.ascontiguousarray(row_match, dtype=np.int64)
        cm = np.full(ncols, NIL, dtype=np.int64)
        matched_rows = np.flatnonzero(rm != NIL)
        cols = rm[matched_rows]
        if cols.size and (cols.min() < 0 or cols.max() >= ncols):
            raise ValidationError("row_match references column out of range")
        uniq, counts = np.unique(cols, return_counts=True)
        if np.any(counts > 1):
            j = int(uniq[np.argmax(counts > 1)])
            raise ValidationError(f"column {j} claimed by multiple rows")
        cm[cols] = matched_rows
        return cls(rm, cm)

    @classmethod
    def from_col_match(cls, col_match: object, nrows: int) -> "Matching":
        """Build from a column-side array, deriving the row side.

        This is exactly the semantics of ``OneSidedMatch``'s ``cmatch``
        output: the surviving writes define the matching.
        """
        cm = np.ascontiguousarray(col_match, dtype=np.int64)
        rm = np.full(nrows, NIL, dtype=np.int64)
        matched_cols = np.flatnonzero(cm != NIL)
        rows = cm[matched_cols]
        if rows.size and (rows.min() < 0 or rows.max() >= nrows):
            raise ValidationError("col_match references row out of range")
        uniq, counts = np.unique(rows, return_counts=True)
        if np.any(counts > 1):
            i = int(uniq[np.argmax(counts > 1)])
            raise ValidationError(f"row {i} claimed by multiple columns")
        rm[rows] = matched_cols
        return cls(rm, cm)

    @classmethod
    def from_pairs(
        cls, pairs: object, nrows: int, ncols: int
    ) -> "Matching":
        """Build from an iterable of ``(row, col)`` pairs."""
        rm = np.full(nrows, NIL, dtype=np.int64)
        cm = np.full(ncols, NIL, dtype=np.int64)
        for i, j in pairs:
            if rm[i] != NIL or cm[j] != NIL:
                raise ValidationError(f"pair ({i}, {j}) conflicts")
            rm[i] = j
            cm[j] = i
        return cls(rm, cm)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        return int(self.row_match.shape[0])

    @property
    def ncols(self) -> int:
        return int(self.col_match.shape[0])

    @property
    def cardinality(self) -> int:
        """Number of matched edges ``|M|``."""
        return int(np.count_nonzero(self.row_match != NIL))

    def is_perfect(self) -> bool:
        """True iff every row *and* every column is matched."""
        return (
            np.all(self.row_match != NIL) and np.all(self.col_match != NIL)
        )

    def matched_rows(self) -> IndexArray:
        return np.flatnonzero(self.row_match != NIL)

    def unmatched_rows(self) -> IndexArray:
        return np.flatnonzero(self.row_match == NIL)

    def matched_cols(self) -> IndexArray:
        return np.flatnonzero(self.col_match != NIL)

    def unmatched_cols(self) -> IndexArray:
        return np.flatnonzero(self.col_match == NIL)

    def pairs(self) -> list[tuple[int, int]]:
        """All matched ``(row, col)`` pairs."""
        rows = self.matched_rows()
        return [(int(i), int(self.row_match[i])) for i in rows]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, graph: BipartiteGraph) -> None:
        """Raise :class:`ValidationError` unless this is a valid matching
        of *graph* (mutually consistent sides, every matched pair an edge).
        """
        if self.nrows != graph.nrows or self.ncols != graph.ncols:
            raise ShapeError(
                f"matching shape ({self.nrows}, {self.ncols}) does not "
                f"fit graph {graph.shape}"
            )
        rm, cm = self.row_match, self.col_match
        rows = np.flatnonzero(rm != NIL)
        cols = rm[rows]
        if cols.size and (cols.min() < 0 or cols.max() >= graph.ncols):
            raise ValidationError("row_match references column out of range")
        if not np.array_equal(cm[cols], rows):
            raise ValidationError("row_match and col_match are inconsistent")
        jcols = np.flatnonzero(cm != NIL)
        if jcols.size != rows.size:
            raise ValidationError(
                "col_match has matched entries not mirrored in row_match"
            )
        for i in rows:
            j = int(rm[i])
            if not graph.has_edge(int(i), j):
                raise ValidationError(f"matched pair ({int(i)}, {j}) is not an edge")

    def quality(self, maximum_cardinality: int) -> float:
        """``|M| / maximum_cardinality`` — the paper's quality metric."""
        if maximum_cardinality <= 0:
            raise ValidationError(
                f"maximum cardinality must be positive, got {maximum_cardinality}"
            )
        return self.cardinality / maximum_cardinality
