"""Matchings: container, exact algorithms, and heuristic baselines."""

from repro.matching.matching import Matching, NIL
from repro.matching.exact.hopcroft_karp import hopcroft_karp
from repro.matching.exact.mc21 import mc21
from repro.matching.exact.auction import AuctionResult, auction_match, regularity_probe
from repro.matching.exact.push_relabel import push_relabel
from repro.matching.exact.sprank import sprank
from repro.matching.heuristics.greedy import (
    greedy_edge_matching,
    greedy_row_matching,
    greedy_vertex_matching,
)
from repro.matching.heuristics.karp_sipser import karp_sipser, KarpSipserStats
from repro.matching.heuristics.karp_sipser_relaxed import karp_sipser_relaxed
from repro.matching.heuristics.karp_sipser_plus import karp_sipser_plus, KarpSipserPlusStats

__all__ = [
    "AuctionResult",
    "auction_match",
    "regularity_probe",
    "Matching",
    "NIL",
    "hopcroft_karp",
    "mc21",
    "push_relabel",
    "sprank",
    "greedy_edge_matching",
    "greedy_row_matching",
    "greedy_vertex_matching",
    "karp_sipser",
    "karp_sipser_relaxed",
    "karp_sipser_plus",
    "KarpSipserPlusStats",
    "KarpSipserStats",
]
