"""Structural rank (maximum matching cardinality) of a sparse pattern."""

from __future__ import annotations

from repro.graph.csr import BipartiteGraph
from repro.matching.exact.hopcroft_karp import hopcroft_karp

__all__ = ["sprank"]


def sprank(graph: BipartiteGraph) -> int:
    """Maximum-cardinality matching size of *graph*.

    The paper's quality metric divides every heuristic matching size by this
    number (called ``sprank`` in Tables 2 and 3, from the sparse-matrix view:
    the structural rank of ``A``).
    """
    return hopcroft_karp(graph).cardinality
