"""Push-relabel maximum bipartite matching.

The paper's companion work (Kaya, Langguth, Manne, Uçar — "Push-relabel
based algorithms for the maximum transversal problem", reference [21])
builds exact matchers from the push-relabel framework; the GPU studies it
cites ([9, 10]) use the same core.  This is the sequential "double push"
variant:

* every column carries a *price* (label) ``psi``, initially 0;
* an unmatched row pushes to its cheapest neighbour column: it takes the
  column (displacing that column's previous mate, which becomes active),
  and the column is *relabelled* to ``second_cheapest + 2`` so the same
  row will not immediately steal it back;
* a row whose cheapest neighbour has a price beyond the cap can never
  reach a free column and is abandoned.

Labels are monotone and bounded, giving an ``O(n·tau)`` worst case; on
typical inputs the displaced-row chains are short.  Exactness is verified
against Hopcroft–Karp in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import BipartiteGraph
from repro.matching.matching import NIL, Matching

__all__ = ["push_relabel"]


def push_relabel(
    graph: BipartiteGraph, initial: Matching | None = None
) -> Matching:
    """Maximum-cardinality matching via double-push / relabel.

    Parameters
    ----------
    graph:
        The bipartite graph.
    initial:
        Optional valid matching to warm-start from (e.g. a heuristic
        result); displaced-row chains then start only from the rows the
        heuristic left unmatched.
    """
    nrows, ncols = graph.nrows, graph.ncols
    row_ptr = graph.row_ptr
    col_ind = graph.col_ind

    if initial is not None:
        initial.validate(graph)
        row_match = initial.row_match.copy()
        col_match = initial.col_match.copy()
    else:
        row_match = np.full(nrows, NIL, dtype=np.int64)
        col_match = np.full(ncols, NIL, dtype=np.int64)

    psi = np.zeros(ncols, dtype=np.int64)
    # A column's label increases by >= 1 per relabel and a label beyond
    # 2*ncols certifies no augmenting path through it remains.
    cap = 2 * ncols + 1

    for start in range(nrows):
        if row_match[start] != NIL:
            continue
        v = start
        while v != NIL:
            lo, hi = int(row_ptr[v]), int(row_ptr[v + 1])
            if lo == hi:
                break  # isolated row
            # Cheapest and second-cheapest neighbour columns.
            best = -1
            best_psi = cap
            second_psi = cap
            for k in range(lo, hi):
                c = int(col_ind[k])
                p = int(psi[c])
                if p < best_psi:
                    second_psi = best_psi
                    best_psi = p
                    best = c
                elif p < second_psi:
                    second_psi = p
            if best_psi >= cap:
                break  # no free column reachable: abandon this row
            # Double push: take the column, displace its mate.
            displaced = int(col_match[best])
            col_match[best] = v
            row_match[v] = best
            psi[best] = second_psi + 2
            if displaced != NIL:
                row_match[displaced] = NIL
            v = displaced

    return Matching(row_match, col_match)
