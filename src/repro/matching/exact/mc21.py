"""MC21-style augmenting-path maximum matching (row-by-row DFS).

Duff's MC21 is the classic "maximum transversal" code referenced by the
paper's related work [11].  Complexity is ``O(n * tau)`` worst case, but the
cheap-assignment *lookahead* makes it fast in practice; it serves here both
as an independent exact oracle for Hopcroft–Karp and as the natural consumer
of heuristic jump-starts (examples/jump_start.py).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import BipartiteGraph
from repro.matching.matching import NIL, Matching

__all__ = ["mc21"]


def mc21(
    graph: BipartiteGraph, initial: Matching | None = None
) -> Matching:
    """Maximum matching via depth-first augmenting paths with lookahead.

    Parameters
    ----------
    graph:
        The bipartite graph.
    initial:
        Optional matching to warm-start from; rows it already matches are
        skipped and only the remaining free rows trigger searches.
    """
    nrows, ncols = graph.nrows, graph.ncols
    row_ptr = graph.row_ptr
    col_ind = graph.col_ind

    if initial is not None:
        initial.validate(graph)
        row_match = initial.row_match.copy()
        col_match = initial.col_match.copy()
    else:
        row_match = np.full(nrows, NIL, dtype=np.int64)
        col_match = np.full(ncols, NIL, dtype=np.int64)

    # lookahead[i]: next CSR slot of row i to inspect for a *free* column.
    # Advances monotonically over the whole run (the MC21 cheap-assignment
    # trick), so total lookahead work is O(tau).
    lookahead = row_ptr[:-1].copy()
    # visited[j] == stamp marks column j as seen in the current search.
    visited = np.full(ncols, -1, dtype=np.int64)
    ptr = np.empty(nrows, dtype=np.int64)
    stack = np.empty(nrows + 1, dtype=np.int64)
    chosen = np.empty(nrows + 1, dtype=np.int64)

    for root in range(nrows):
        if row_match[root] != NIL:
            continue
        stamp = root
        top = 0
        stack[0] = root
        ptr[root] = row_ptr[root]
        while top >= 0:
            i = int(stack[top])
            found_j = -1
            # Cheap assignment: scan for an immediately free column.
            k = int(lookahead[i])
            end = int(row_ptr[i + 1])
            while k < end:
                j = int(col_ind[k])
                k += 1
                if col_match[j] == NIL:
                    found_j = j
                    break
            lookahead[i] = k
            if found_j >= 0:
                # Augment along the stack.
                chosen[top] = found_j
                for t in range(top, -1, -1):
                    it = int(stack[t])
                    jt = int(chosen[t])
                    row_match[it] = jt
                    col_match[jt] = it
                break
            # Depth-first step through an unvisited matched column.
            advanced = False
            while ptr[i] < row_ptr[i + 1]:
                j = int(col_ind[ptr[i]])
                ptr[i] += 1
                if visited[j] != stamp:
                    visited[j] = stamp
                    i2 = int(col_match[j])
                    chosen[top] = j
                    top += 1
                    stack[top] = i2
                    ptr[i2] = row_ptr[i2]
                    advanced = True
                    break
            if not advanced:
                top -= 1

    return Matching(row_match, col_match)
