"""ε-scaling auction engine for maximum-cardinality bipartite matching.

The quality ladder's heuristics (greedy → one_sided → two_sided) certify
floors below 1; this engine is the exact top rung.  It runs the auction
algorithm of Bertsekas specialised to the unweighted (cardinality) case,
in the synchronous/Jacobi form Naparstek–Leshem (arXiv:1401.0119) analyse
for shared-memory parallelism: every free row computes its bid in the
same round over a snapshot of the column prices, and the commits happen
once per round with a deterministic tie-break.  The bid sweep is a
registered kernel (``auction_bid``), so serial, thread, process, and
shared-memory backends produce bitwise-identical matchings and prices.

How exactness is certified
--------------------------

All edge values are equal (we only count cardinality), so a matched pair
``(i, j)`` satisfies *ε-complementary slackness* when

    ``p[j] <= min_{k ∈ N(i)} p[k] + ε_f``

where ``ε_f <= eps_start`` is the phase ε at the round the pair formed
(prices of matched columns change only when the pair re-forms, so the
inequality persists).  Bids are ``second_cheapest_alive + ε``, which is
bounded by ``dead_level + ε``, so the inequality extends over *dead*
neighbours too (their price is ≥ the dead level by definition).

A free row is *abandoned* (certified unmatchable) only when every
neighbour's price is at or above the round's ``dead_level``, which is the
minimum of two certificates:

* **cap** — ``min(n, m)·eps_start + max(p0) + eps_start``.  An augmenting
  path alternates matched pairs, and ε-CS lets the column prices along it
  drop by at most ``eps_start`` per pair; a path from a column priced at
  the cap would need more than ``min(n, m)`` pairs to reach a free column
  (free columns never accept a bid, so they keep their initial price
  ``≤ max(p0)``) — longer than any simple alternating path.
* **gap/band** — if some price band of width ``> eps_start`` is empty and
  every *free* column sits below it, the same descent argument shows no
  augmenting path crosses the band: every column priced above it is dead.
  This is the auction analogue of push–relabel's gap heuristic and is
  what keeps deficient instances (where some rows genuinely cannot be
  matched) from crawling prices up to the cap one ε at a time.

Both certificates are evaluated against the *current* free-column set,
which only shrinks (columns never unmatch), so abandonment decisions
remain valid at termination.  Rounds terminate because every active free
row either bids (raising some column's price by ≥ ε when accepted) or is
abandoned, and prices are bounded by the cap.

ε-scaling runs the same loop over a decreasing schedule
``eps_start / eps_factor^k ≥ eps_min``; coarse phases are round-budgeted
and the final phase runs to quiescence.  For pure cardinality the
schedule does not change the answer — it tightens the final prices,
which matters when they warm-start the next streaming epoch.

Warm starts
-----------

``initial`` accepts a :class:`~repro.matching.matching.Matching` or any
result object carrying one (``two_sided_match`` results, stream epochs);
``prices`` accepts a previous epoch's price vector and ``scaling``
derives dual-like prices from Sinkhorn–Knopp factors
(:func:`~repro.scaling.duals.dual_prices`).  Warm pairs that violate
ε-CS at ``eps_start`` are dissolved (the rows re-enter the auction), so
every invariant above holds regardless of where the start came from.

Sampling fast path
------------------

On perfectly d-regular square instances (detected by a cheap probe) a
cold start can skip the auction entirely: Goel–Kapralov–Khanna
(arXiv:0909.3346) show truncated random-walk augmentation finds a
perfect matching in ``O(n log n)`` expected steps.  The walk runs
serially in the parent from the caller's seed (deterministic across
backends); if its step budget runs out the partial matching warm-starts
the general auction instead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro import telemetry as _tm
from repro._typing import FloatArray, IndexArray
from repro.errors import MatchingError, ValidationError
from repro.graph.csr import BipartiteGraph
from repro.matching.matching import NIL, Matching
from repro.parallel.backends import Backend
from repro.parallel.kernels import AUCTION_DROP, run_kernel
from repro.parallel.reduction import gather_segments
from repro.resilience.deadline import request_deadline

__all__ = ["AuctionResult", "auction_match", "regularity_probe"]

#: Relative slack when comparing float price gaps against ε thresholds —
#: certificates must only fire on gaps *strictly* wider than ε.
_GAP_SLACK = 1e-9


@dataclass(frozen=True)
class AuctionResult:
    """Outcome of :func:`auction_match`.

    Attributes
    ----------
    matching:
        A maximum-cardinality matching (validated against the graph).
    prices:
        Final column prices — ε-CS duals, reusable as the ``prices``
        warm start of a later call (e.g. the next streaming epoch).
    rounds:
        Total synchronous bidding rounds across all phases.
    phases:
        Number of ε-schedule phases executed.
    eps_final:
        The ε of the last phase.
    abandoned:
        Rows certified unmatchable by the gap/cap argument (equals
        ``nrows - cardinality`` for square-deficient instances).
    dissolved:
        Warm-start pairs dropped to restore ε-complementary slackness.
    mode:
        ``"auction"``, ``"sampling"`` (GKK walk finished alone), or
        ``"sampling+auction"`` (walk budget ran out, auction finished).
    warm_started:
        True when an initial matching and/or prices were supplied.
    cardinality_trace:
        Matched-pair count after each round — non-decreasing, because
        columns never unmatch (a displaced row's column is re-matched in
        the same commit).
    """

    matching: Matching
    prices: FloatArray
    rounds: int
    phases: int
    eps_final: float
    abandoned: int
    dissolved: int
    mode: str
    warm_started: bool
    cardinality_trace: tuple[int, ...]

    @property
    def cardinality(self) -> int:
        return self.matching.cardinality

    @property
    def guarantee(self) -> float:
        """Exact tier: the matching is maximum, quality 1.0 by construction."""
        return 1.0


def regularity_probe(graph: BipartiteGraph) -> int:
    """Common degree ``d ≥ 1`` if *graph* is square and d-regular, else 0.

    This is the (cheap, O(n)) gate for the Goel–Kapralov–Khanna sampling
    fast path: regular square bipartite graphs have a perfect matching
    (König), which the truncated-walk analysis assumes.
    """
    if graph.nrows != graph.ncols or graph.nrows == 0:
        return 0
    rd = graph.row_degrees()
    d = int(rd[0])
    if d < 1:
        return 0
    if not (rd == d).all():
        return 0
    cd = graph.col_degrees()
    if not (cd == d).all():
        return 0
    return d


def _coerce_initial(initial: object, graph: BipartiteGraph) -> Matching | None:
    """Accept a Matching or any result object carrying ``.matching``."""
    if initial is None:
        return None
    m = getattr(initial, "matching", initial)
    if not isinstance(m, Matching):
        raise ValidationError(
            "initial must be a Matching or carry a .matching attribute, "
            f"got {type(initial).__name__}"
        )
    m.validate(graph)
    return m


def _eps_schedule(eps_start: float, eps_min: float, eps_factor: float) -> list[float]:
    if eps_start <= 0 or eps_min <= 0 or eps_min > eps_start * (1 + _GAP_SLACK):
        raise ValidationError(
            f"need 0 < eps_min <= eps_start, got {eps_min}/{eps_start}"
        )
    if eps_factor <= 1:
        raise ValidationError(f"eps_factor must exceed 1, got {eps_factor}")
    sched = [float(eps_start)]
    while sched[-1] / eps_factor >= eps_min * (1 - _GAP_SLACK):
        sched.append(sched[-1] / eps_factor)
    return sched


def _row_min_prices(graph: BipartiteGraph, prices: FloatArray) -> FloatArray:
    """``out[i] = min over N(i) of prices`` (inf for empty rows)."""
    nrows = graph.nrows
    out = np.full(nrows, np.inf)
    if graph.nnz == 0:
        return out
    ptr = graph.row_ptr
    nonempty = ptr[1:] > ptr[:-1]
    if nonempty.any():
        out[nonempty] = np.minimum.reduceat(
            prices[graph.col_ind], ptr[:-1][nonempty]
        )
    return out


def _enforce_eps_cs(
    graph: BipartiteGraph,
    row_match: IndexArray,
    col_match: IndexArray,
    prices: FloatArray,
    eps_start: float,
) -> int:
    """Dissolve warm pairs violating ε-CS at ``eps_start``; return count.

    Dissolving (rather than repairing prices) keeps prices monotone and
    is always safe: the freed rows simply rejoin the auction.
    """
    matched = np.flatnonzero(row_match != NIL)
    if matched.size == 0:
        return 0
    minp = _row_min_prices(graph, prices)
    bad = matched[
        prices[row_match[matched]]
        > minp[matched] + eps_start * (1 + _GAP_SLACK)
    ]
    if bad.size:
        col_match[row_match[bad]] = NIL
        row_match[bad] = NIL
    return int(bad.size)


def _dead_level(
    prices: FloatArray, free_cols: np.ndarray, eps_start: float, cap: float
) -> float:
    """The price at/above which a column is certifiably dead this round.

    Returns ``min(band_top, cap)`` where *band_top* is the lowest price
    strictly above an empty band of width > ``eps_start`` that itself
    lies at or above every free column's price (see module docstring).
    """
    band_top = cap
    base = float(prices[free_cols].max())
    q = np.unique(prices)
    q = q[q >= base]
    if q.shape[0] >= 2:
        gaps = np.flatnonzero(np.diff(q) > eps_start * (1 + _GAP_SLACK))
        if gaps.size:
            band_top = min(band_top, float(q[gaps[0] + 1]))
    return band_top


def _gkk_sample(
    graph: BipartiteGraph,
    rng: np.random.Generator,
    row_match: IndexArray,
    col_match: IndexArray,
    budget: int,
) -> bool:
    """Truncated random-walk augmentation (GKK); True if matching is perfect.

    Walks run from free rows and flip matched edges *as they go*: a step
    from row ``v`` to a matched column ``u`` with mate ``w`` immediately
    rematches ``u`` to ``v`` and continues from the now-free ``w`` — so
    the matching stays valid at every step and its cardinality rises
    exactly when the walk reaches a free column.  A truncated walk merely
    relocates which row is free; it is retried with fresh randomness.
    Truncation is ``2·(2 + n/(n - j))`` steps, *j* being the current
    matched count (the Goel–Kapralov–Khanna schedule).  Stops when the
    matching is perfect or *budget* total steps are spent (the caller
    then falls back to the auction, warm-started from the partial
    matching).
    """
    n = graph.nrows
    row_ptr, col_ind = graph.row_ptr, graph.col_ind
    matched = int((row_match != NIL).sum())
    steps = 0
    while matched < n and steps < budget:
        free = np.flatnonzero(row_match == NIL)
        for start in free:
            if steps >= budget:
                break
            while row_match[start] == NIL and steps < budget:
                trunc = 2.0 * (2.0 + n / max(1, n - matched))
                v = start
                walked = 0
                while walked < trunc and steps < budget:
                    lo, hi = row_ptr[v], row_ptr[v + 1]
                    u = col_ind[lo + rng.integers(hi - lo)]
                    steps += 1
                    walked += 1
                    w = col_match[u]
                    col_match[u] = v
                    row_match[v] = u
                    if w == NIL:
                        matched += 1
                        break
                    row_match[w] = NIL
                    v = w
    return matched >= n


def _gauss_seidel_drain(
    graph: BipartiteGraph,
    p: FloatArray,
    row_match: IndexArray,
    col_match: IndexArray,
    active: np.ndarray,
    queue: IndexArray,
    eps: float,
    eps_start: float,
    cap: float,
    dl: object,
    trace: list[int],
    matched: int,
) -> tuple[int, int]:
    """Drain the free-row tail with sequential (Gauss–Seidel) bidding.

    The Jacobi kernel rounds advance every augmenting chain by one
    displacement per round, which is the right shape for the parallel
    bulk but quadratic-feeling on the tail, where a handful of chains
    crawl while every round still pays O(n) bookkeeping.  Classic
    sequential auction fixes that: pop a free row, bid, commit, push the
    displaced row — a chain resolves in as many pops as its length.  The
    pass runs serially in the parent in FIFO order from a sorted queue,
    so it is deterministic and backend-independent by construction; the
    hot loop works on plain Python lists because the per-row slices are
    tiny (a handful of neighbours) and numpy call overhead would
    dominate.

    The band certificate is kept *always fresh* at O(1) amortised cost
    by maintaining a histogram of column prices in bins of width
    ``eps_start/2``: a run of three empty bins above every free column
    is an empty price interval of width ``1.5·eps_start > eps_start``,
    so everything priced above the run is certifiably dead.  (Bin
    occupancy moves with each accepted bid; the run scan touches only
    the occupied prefix of the histogram.)  The exclusion level used for
    *bidding* may be arbitrarily stale — the ε-CS bound only needs
    excluded neighbours to be priced at or above the level the bid was
    compared against — but a *drop* always re-scans first, so every
    abandonment is certified against current prices.  The free-column
    price bound ``base0`` is computed once at entry: free columns never
    change price and the free set only shrinks, so the entry-time
    supremum stays valid.

    Returns ``(matched, abandoned_here)``.
    """
    nil = int(NIL)
    inf = float("inf")
    abandoned = 0
    pops = 0
    guard = 400 * (graph.nrows + graph.ncols + 1)

    # Histogram of column prices in eps_start/2-wide bins.
    h = eps_start / 2.0
    nbins = int(cap / h) + 8
    bins = np.zeros(nbins, dtype=np.int64)
    idx = np.minimum((p / h).astype(np.int64), nbins - 1)
    bins += np.bincount(idx, minlength=nbins)
    maxbin = int(idx.max()) if idx.size else 0
    free_mask = col_match == NIL
    free_cols_left = int(free_mask.sum())
    base0 = float(p[free_mask].max()) if free_cols_left else 0.0
    lowbin = int(base0 / h) + 1

    def scan_dead() -> float:
        """Fresh dead level from the current histogram (always valid)."""
        if free_cols_left == 0:
            return -inf
        hi_b = min(maxbin + 4, nbins)
        z = bins[lowbin:hi_b] == 0
        if z.shape[0] >= 3:
            run = z[:-2] & z[1:-1] & z[2:]
            nz = np.flatnonzero(run)
            if nz.size:
                return min(cap, (lowbin + int(nz[0]) + 3) * h)
        return cap

    # Python-list mirrors of the hot state; written back on exit.
    ptr_l = graph.row_ptr.tolist()
    ind_l = graph.col_ind.tolist()
    p_l = p.tolist()
    rm_l = row_match.tolist()
    cm_l = col_match.tolist()
    q = deque(int(i) for i in queue)
    dead = scan_dead()
    while q:
        i = q.popleft()
        if rm_l[i] != nil or not active[i]:
            continue
        pops += 1
        if pops > guard:  # pragma: no cover - safety valve
            raise MatchingError(
                f"auction tail failed to settle within {guard} bids"
            )
        if dl is not None and (pops & 4095) == 0:
            dl.ensure("auction match")
        s, e = ptr_l[i], ptr_l[i + 1]
        best = inf
        second = inf
        bj = -1
        for k in range(s, e):
            pc = p_l[ind_l[k]]
            if pc >= dead:
                continue
            if pc < best:
                second = best
                best = pc
                bj = ind_l[k]
            elif pc < second:
                second = pc
        if bj < 0:
            # Nothing alive under the cached level: re-scan, then either
            # drop under the fresh certificate or re-bid under the
            # refreshed level (which must then expose an alive column,
            # so the loop makes progress).
            dead = scan_dead()
            if s == e:
                active[i] = False  # empty rows carry their own certificate
                abandoned += 1
            elif min(p_l[ind_l[k]] for k in range(s, e)) >= dead:
                active[i] = False
                abandoned += 1
            else:
                q.appendleft(i)
            continue
        bid = (second if second < inf else best) + eps
        w = cm_l[bj]
        cm_l[bj] = i
        rm_l[i] = bid_col = bj
        ob = int(p_l[bid_col] / h)
        p_l[bid_col] = bid
        nb = int(bid / h)
        if nb >= nbins:
            nb = nbins - 1
        if ob >= nbins:
            ob = nbins - 1
        bins[ob] -= 1
        bins[nb] += 1
        if nb > maxbin:
            maxbin = nb
        if w == nil:
            matched += 1
            free_cols_left -= 1
        else:
            rm_l[w] = nil
            q.append(w)
    row_match[:] = rm_l
    col_match[:] = cm_l
    p[:] = p_l
    trace.append(matched)
    _tm.incr("auction.gs_bids", pops)
    return matched, abandoned


def auction_match(
    graph: BipartiteGraph,
    *,
    initial: object | None = None,
    prices: FloatArray | None = None,
    scaling: object | None = None,
    eps_start: float = 1.0,
    eps_min: float = 1.0,
    eps_factor: float = 4.0,
    backend: Backend | str | None = None,
    sampling: str = "auto",
    seed: object = None,
    deadline: object = None,
    max_rounds: int | None = None,
    gs_tail: int | None = None,
) -> AuctionResult:
    """Maximum-cardinality matching by ε-scaling auction.

    Parameters
    ----------
    graph:
        The bipartite graph.
    initial:
        Warm-start matching — a :class:`Matching` or any result object
        with a ``.matching`` attribute (``two_sided_match`` results,
        stream epochs).  Pairs violating ε-CS are dissolved, the rest
        survive, so a good heuristic start skips most bidding rounds.
    prices:
        Warm-start column prices (length ``ncols``); clipped into
        ``[0, min(n, m)·eps_start]`` so repeated warm starts (streaming
        epochs) keep the abandonment cap bounded.
    scaling:
        A :class:`~repro.scaling.result.ScalingResult` (or raw ``dc``
        factors) used to derive dual-like initial prices when *prices*
        is not given — see :func:`~repro.scaling.duals.dual_prices`.
    eps_start / eps_min / eps_factor:
        The ε-scaling schedule ``eps_start / eps_factor^k ≥ eps_min``.
        Cardinality is exact under any valid schedule; smaller final ε
        yields tighter dual prices but slower price climbs, so the
        default is the single-phase ``[eps_start]`` schedule (for the
        cardinality objective the fine phases buy nothing).
    backend:
        Execution backend (or spec string) for the bid kernel; results
        are bitwise identical across backends.
    sampling:
        ``"auto"`` enables the GKK random-walk fast path on cold starts
        of regular square graphs; ``"never"`` disables it.
    seed:
        Randomness for the sampling path only (the auction itself is
        deterministic).
    deadline:
        Optional wall-clock budget (seconds or a ``Deadline``); checked
        once per round, raising ``DeadlineExceededError``.
    max_rounds:
        Safety valve on total rounds (default scales with the graph);
        exceeding it raises :class:`~repro.errors.MatchingError`.
    gs_tail:
        Free-row count at or below which the final phase switches from
        kernel (Jacobi) rounds to the sequential Gauss–Seidel drain —
        see :func:`_gauss_seidel_drain`.  Defaults to
        ``max(256, nrows // 32)``; pass ``0`` to force pure kernel
        rounds (useful for backend-equivalence tests).
    """
    if sampling not in ("auto", "never"):
        raise ValidationError(
            f'sampling must be "auto" or "never", got {sampling!r}'
        )
    nrows, ncols = graph.nrows, graph.ncols
    schedule = _eps_schedule(eps_start, eps_min, eps_factor)
    init = _coerce_initial(initial, graph)
    warm = init is not None or prices is not None

    if init is not None:
        row_match = init.row_match.copy()
        col_match = init.col_match.copy()
    else:
        row_match = np.full(nrows, NIL, dtype=np.int64)
        col_match = np.full(ncols, NIL, dtype=np.int64)

    price_clip = min(nrows, ncols) * eps_start
    if prices is not None:
        p = np.ascontiguousarray(prices, dtype=np.float64).copy()
        if p.shape != (ncols,):
            raise ValidationError(
                f"prices must have shape ({ncols},), got {p.shape}"
            )
        if not np.isfinite(p).all():
            raise ValidationError("prices must be finite")
        np.clip(p, 0.0, price_clip, out=p)
    elif scaling is not None:
        from repro.scaling.duals import dual_prices

        p = dual_prices(scaling, eps=eps_start)
        if p.shape != (ncols,):
            raise ValidationError(
                f"scaling factors imply {p.shape[0]} columns, graph has {ncols}"
            )
        np.clip(p, 0.0, price_clip, out=p)
    else:
        p = np.zeros(ncols, dtype=np.float64)

    dissolved = _enforce_eps_cs(graph, row_match, col_match, p, eps_start)

    mode = "auction"
    rng = np.random.default_rng(seed)
    if sampling == "auto" and not warm and graph.nnz:
        d = regularity_probe(graph)
        if d:
            budget = int(40 * nrows * (np.log(nrows + 2.0) + 1.0))
            perfect = _gkk_sample(graph, rng, row_match, col_match, budget)
            mode = "sampling" if perfect else "sampling+auction"
            _tm.incr("auction.sampling_runs")

    max_p0 = float(p.max()) if ncols else 0.0
    cap = min(nrows, ncols) * eps_start + max_p0 + eps_start
    if max_rounds is None:
        max_rounds = 200 + 50 * min(nrows, ncols)
    if gs_tail is None:
        gs_tail = max(256, nrows // 32)

    active = np.ones(nrows, dtype=bool)
    empty_rows = graph.row_degrees() == 0
    abandoned = int(empty_rows.sum())
    active[empty_rows] = False

    row_ptr, col_ind = graph.row_ptr, graph.col_ind
    rounds = 0
    phases = 0
    trace: list[int] = []
    # Coarse phases get a round budget; the final phase runs to quiescence.
    phase_budget = max(4, int(2 * np.log2(nrows + 2)) + 4)

    with request_deadline(deadline) as dl, _tm.span(
        "auction.match", nrows=nrows, ncols=ncols, mode=mode
    ):
        for phase_idx, eps in enumerate(schedule):
            final = phase_idx == len(schedule) - 1
            phase_rounds = 0
            phases += 1
            while True:
                if not final and phase_rounds >= phase_budget:
                    break
                free_rows = np.flatnonzero(active & (row_match == NIL))
                if free_rows.size == 0:
                    break
                if free_rows.size <= gs_tail:
                    if not final:
                        # Too little bulk left for a coarse phase —
                        # fall through to the final ε immediately.
                        break
                    matched, ab = _gauss_seidel_drain(
                        graph, p, row_match, col_match, active, free_rows,
                        eps, eps_start, cap, dl, trace,
                        int((row_match != NIL).sum()),
                    )
                    abandoned += ab
                    break
                free_cols = col_match == NIL
                if not free_cols.any():
                    # Every column is matched: the matching is maximum.
                    abandoned += int(free_rows.size)
                    active[free_rows] = False
                    break
                if dl is not None:
                    dl.ensure("auction match")
                if rounds >= max_rounds:
                    raise MatchingError(
                        f"auction failed to settle within {max_rounds} rounds"
                    )
                dead = _dead_level(p, free_cols, eps_start, cap)
                sub_ind, sub_ptr = gather_segments(row_ptr, col_ind, free_rows)
                bid_col = np.empty(free_rows.size, dtype=np.int64)
                bid_val = np.empty(free_rows.size, dtype=np.float64)
                run_kernel(
                    "auction_bid",
                    free_rows.size,
                    {
                        "ptr": sub_ptr,
                        "ind": sub_ind,
                        "prices": p,
                        "bid_col": bid_col,
                        "bid_val": bid_val,
                    },
                    backend=backend,
                    scalars={"eps": eps, "dead": dead},
                )
                drop = bid_col == AUCTION_DROP
                if drop.any():
                    active[free_rows[drop]] = False
                    abandoned += int(drop.sum())
                bidders = ~drop
                if bidders.any():
                    rows_b = free_rows[bidders]
                    cols_b = bid_col[bidders]
                    vals_b = bid_val[bidders]
                    # Highest bid wins each column; ties go to the lowest
                    # row index — the deterministic commit.
                    order = np.lexsort((rows_b, -vals_b, cols_b))
                    cs = cols_b[order]
                    first = np.ones(cs.size, dtype=bool)
                    first[1:] = cs[1:] != cs[:-1]
                    win = order[first]
                    wrows, wcols = rows_b[win], cols_b[win]
                    displaced = col_match[wcols]
                    displaced = displaced[displaced != NIL]
                    row_match[displaced] = NIL
                    col_match[wcols] = wrows
                    row_match[wrows] = wcols
                    p[wcols] = vals_b[win]
                    _tm.incr("auction.bids", int(rows_b.size))
                rounds += 1
                phase_rounds += 1
                trace.append(int((row_match != NIL).sum()))

    matching = Matching(row_match, col_match)
    matching.validate(graph)
    _tm.incr("auction.rounds", rounds)
    if abandoned:
        _tm.incr("auction.abandoned", abandoned)
    return AuctionResult(
        matching=matching,
        prices=p,
        rounds=rounds,
        phases=phases,
        eps_final=schedule[-1],
        abandoned=abandoned,
        dissolved=dissolved,
        mode=mode,
        warm_started=warm,
        cardinality_trace=tuple(trace),
    )
