"""Hopcroft–Karp maximum-cardinality bipartite matching.

This is the exact ``O(sqrt(n) * tau)`` algorithm the paper cites [17] as the
best known worst case; the library uses it to compute the structural rank
(the denominator of every quality figure) and as the correctness oracle for
the heuristics.

The implementation is fully iterative (no recursion), works directly on the
CSR arrays, and optionally warm-starts from a caller-provided matching —
which is precisely how the paper motivates cheap heuristics: as jump-starts
for exact algorithms.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatchingError
from repro.graph.csr import BipartiteGraph
from repro.matching.matching import NIL, Matching

__all__ = ["hopcroft_karp"]

_INF = np.iinfo(np.int64).max


def _greedy_seed(
    graph: BipartiteGraph, row_match: np.ndarray, col_match: np.ndarray
) -> None:
    """In-place first-fit greedy matching (classic HK warm start)."""
    col_ind = graph.col_ind
    row_ptr = graph.row_ptr
    for i in range(graph.nrows):
        if row_match[i] != NIL:
            continue
        for k in range(row_ptr[i], row_ptr[i + 1]):
            j = col_ind[k]
            if col_match[j] == NIL:
                row_match[i] = j
                col_match[j] = i
                break


def hopcroft_karp(
    graph: BipartiteGraph,
    initial: Matching | None = None,
    *,
    greedy_init: bool = True,
) -> Matching:
    """Compute a maximum-cardinality matching of *graph*.

    Parameters
    ----------
    graph:
        The bipartite graph.
    initial:
        Optional valid matching to start from (e.g. the output of
        ``OneSidedMatch``/``TwoSidedMatch``).  The result is still a true
        maximum matching; a good start just reduces the number of phases.
    greedy_init:
        When no *initial* is given, seed with a first-fit greedy matching.

    Returns
    -------
    Matching
        A maximum-cardinality matching.
    """
    nrows, ncols = graph.nrows, graph.ncols
    if initial is not None:
        initial.validate(graph)
        row_match = initial.row_match.copy()
        col_match = initial.col_match.copy()
    else:
        row_match = np.full(nrows, NIL, dtype=np.int64)
        col_match = np.full(ncols, NIL, dtype=np.int64)
        if greedy_init:
            _greedy_seed(graph, row_match, col_match)

    row_ptr = graph.row_ptr
    col_ind = graph.col_ind
    dist = np.empty(nrows, dtype=np.int64)
    ptr = np.empty(nrows, dtype=np.int64)
    queue = np.empty(nrows, dtype=np.int64)

    def bfs() -> bool:
        """Layer rows by alternating-path distance from free rows."""
        head = tail = 0
        dist.fill(_INF)
        for i in range(nrows):
            if row_match[i] == NIL:
                dist[i] = 0
                queue[tail] = i
                tail += 1
        found_free_col = False
        while head < tail:
            i = int(queue[head])
            head += 1
            for k in range(row_ptr[i], row_ptr[i + 1]):
                j = col_ind[k]
                i2 = col_match[j]
                if i2 == NIL:
                    found_free_col = True
                elif dist[i2] == _INF:
                    dist[i2] = dist[i] + 1
                    queue[tail] = i2
                    tail += 1
        return found_free_col

    # Explicit stacks for the iterative layered DFS.
    stack = np.empty(nrows + 1, dtype=np.int64)
    chosen = np.empty(nrows + 1, dtype=np.int64)

    def try_augment(root: int) -> bool:
        """Find one augmenting path from free row *root* within layers."""
        top = 0
        stack[0] = root
        while top >= 0:
            i = int(stack[top])
            advanced = False
            while ptr[i] < row_ptr[i + 1]:
                j = int(col_ind[ptr[i]])
                ptr[i] += 1
                i2 = int(col_match[j])
                if i2 == NIL:
                    # Augment along the stacked path.
                    chosen[top] = j
                    for t in range(top, -1, -1):
                        it = int(stack[t])
                        jt = int(chosen[t])
                        row_match[it] = jt
                        col_match[jt] = it
                    return True
                if dist[i2] == dist[i] + 1:
                    chosen[top] = j
                    top += 1
                    stack[top] = i2
                    advanced = True
                    break
            if not advanced:
                dist[i] = _INF  # dead end: prune for this phase
                top -= 1
        return False

    guard = 0
    while bfs():
        guard += 1
        if guard > nrows + 2:  # pragma: no cover - safety net
            raise MatchingError("Hopcroft-Karp exceeded its phase bound")
        ptr[:] = row_ptr[:-1]
        for i in range(nrows):
            if row_match[i] == NIL and dist[i] == 0:
                try_augment(i)

    return Matching(row_match, col_match)
