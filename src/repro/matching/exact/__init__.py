"""Exact maximum-cardinality bipartite matching algorithms."""

from repro.matching.exact.auction import AuctionResult, auction_match, regularity_probe
from repro.matching.exact.hopcroft_karp import hopcroft_karp
from repro.matching.exact.mc21 import mc21
from repro.matching.exact.push_relabel import push_relabel
from repro.matching.exact.sprank import sprank

__all__ = [
    "AuctionResult",
    "auction_match",
    "hopcroft_karp",
    "mc21",
    "push_relabel",
    "regularity_probe",
    "sprank",
]
