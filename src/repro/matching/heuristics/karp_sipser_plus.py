"""Karp–Sipser with the degree-2 contraction rule (KS+).

The classic Karp–Sipser (Section 2.1 of the paper) applies one optimal
rule — match degree-one vertices — and guesses randomly otherwise.  The
literature's standard strengthening (studied for bipartite graphs by the
same authors in follow-up work) adds a second *optimal* rule:

    if a vertex ``u`` has exactly two neighbours ``v`` and ``w``, then
    some maximum matching either matches ``u`` with ``v`` or with ``w``;
    therefore ``v`` and ``w`` can be **contracted** into one vertex and
    ``u`` removed — once the contracted graph is matched, ``u`` takes
    whichever of ``v``/``w`` the contraction's mate did not.

With both rules, random choices happen only when the minimum live degree
is ≥ 3, which on sparse random graphs essentially never loses an edge —
KS+ is near-exact far beyond classic KS's reach.

Implementation notes
--------------------
* the live graph is kept as adjacency *sets* over a dynamic vertex set
  (original vertices plus contraction super-vertices);
* every super-vertex remembers its set of original constituents, so
  "was ``y`` adjacent to ``v`` before the contraction?" reduces to an
  original-edge test between constituent sets;
* contractions are unwound in reverse order at the end, refining the
  contracted matching into a matching of the *original* graph, which is
  validated by the caller/tests as usual.

This is deliberately a clear reference implementation (Python sets, no
CSR tricks): its role is quality comparison, not speed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro._typing import SeedLike, rng_from
from repro.graph.csr import BipartiteGraph
from repro.matching.matching import NIL, Matching

__all__ = ["karp_sipser_plus", "KarpSipserPlusStats"]


@dataclass(frozen=True)
class KarpSipserPlusStats:
    """Rule-application counters for one KS+ run."""

    degree1_matches: int
    degree2_contractions: int
    random_picks: int


def karp_sipser_plus(
    graph: BipartiteGraph,
    seed: SeedLike = None,
    *,
    with_stats: bool = False,
) -> Matching | tuple[Matching, KarpSipserPlusStats]:
    """Run Karp–Sipser with degree-1 and degree-2 rules on *graph*.

    Returns a valid matching of *graph*; with both optimal rules the
    random-choice phase is rarely reached on sparse instances, so the
    result is typically optimal or within a handful of edges of it.
    """
    rng = rng_from(seed)
    nrows, ncols = graph.nrows, graph.ncols
    n0 = nrows + ncols

    # --- original adjacency (unified ids; columns shifted by nrows) ----
    orig_adj: list[set[int]] = [set() for _ in range(n0)]
    rows_of_edges = graph.row_of_edge()
    for k in range(graph.nnz):
        i = int(rows_of_edges[k])
        j = int(graph.col_ind[k]) + nrows
        orig_adj[i].add(j)
        orig_adj[j].add(i)

    # --- dynamic state --------------------------------------------------
    # adj maps live vertex id -> set of live neighbour ids.  Ids >= n0
    # are super-vertices; side[v] True for row-side vertices.
    adj: dict[int, set[int]] = {
        v: set(orig_adj[v]) for v in range(n0) if orig_adj[v]
    }
    side: dict[int, bool] = {v: v < nrows for v in range(n0)}
    constituents: dict[int, set[int]] = {}

    def originals(v: int) -> set[int]:
        return constituents.get(v, {v}) if v >= n0 else {v}

    def orig_adjacent(a: int, b: int) -> bool:
        """Original-graph adjacency between the constituent sets."""
        oa, ob = originals(a), originals(b)
        if len(oa) > len(ob):
            oa, ob = ob, oa
        return any(not orig_adj[x].isdisjoint(ob) for x in oa)

    # match over live ids; refined during unwind.
    match: dict[int, int] = {}
    # contraction log: (u, v, w, s) — u removed, v & w merged into s.
    contractions: list[tuple[int, int, int, int]] = []
    next_id = n0

    queue: deque[int] = deque(v for v, nbrs in adj.items() if len(nbrs) <= 2)

    stats_deg1 = stats_deg2 = stats_rand = 0

    def remove_vertex(v: int) -> None:
        for u in adj.pop(v, set()):
            adj[u].discard(v)
            if len(adj[u]) <= 2:
                queue.append(u)
        side.pop(v, None)

    def do_match(a: int, b: int) -> None:
        match[a] = b
        match[b] = a
        remove_vertex(a)
        remove_vertex(b)

    while True:
        while queue:
            v = queue.popleft()
            if v not in adj:
                continue
            degree = len(adj[v])
            if degree == 0:
                adj.pop(v, None)
                side.pop(v, None)
                continue
            if degree == 1:
                (u,) = adj[v]
                do_match(v, u)
                stats_deg1 += 1
                continue
            if degree == 2:
                nbrs = sorted(adj[v])
                a, b = int(nbrs[0]), int(nbrs[1])
                # Contract a and b (same side — opposite of v) into s.
                s = next_id
                next_id += 1
                merged = (adj[a] | adj[b]) - {v}
                # Remove v first (so its other edges vanish cleanly).
                v_side = side[v]
                remove_vertex(v)
                merged.discard(v)
                # Drop a and b from the graph, then insert s.
                for x in adj.get(a, set()):
                    adj[x].discard(a)
                for x in adj.get(b, set()):
                    adj[x].discard(b)
                adj.pop(a, None)
                adj.pop(b, None)
                merged = {x for x in merged if x in adj}
                adj[s] = merged
                side[s] = not v_side
                constituents[s] = originals(a) | originals(b)
                side.pop(a, None)
                side.pop(b, None)
                for x in merged:
                    adj[x].add(s)
                    if len(adj[x]) <= 2:
                        queue.append(x)
                if len(merged) <= 2:
                    queue.append(s)
                contractions.append((v, a, b, s))
                stats_deg2 += 1
                continue
            # degree >= 3: stale queue entry.
        # Random pick among live edges (min degree >= 3 here).
        live = [v for v in adj if adj[v]]
        if not live:
            break
        v = int(live[int(rng.integers(len(live)))])
        nbrs = sorted(adj[v])
        u = int(nbrs[int(rng.integers(len(nbrs)))])
        do_match(v, u)
        stats_rand += 1

    # --- unwind contractions in reverse --------------------------------
    for v, a, b, s in reversed(contractions):
        mate = match.pop(s, None)
        if mate is None:
            # s unmatched: v takes either constituent (both adjacent).
            match[v] = a
            match[a] = v
            continue
        # Give the mate to whichever of a/b it is originally adjacent to.
        if orig_adjacent(mate, a):
            match[a] = mate
            match[mate] = a
            match[v] = b
            match[b] = v
        else:
            match[b] = mate
            match[mate] = b
            match[v] = a
            match[a] = v

    # --- project onto original vertices ---------------------------------
    row_match = np.full(nrows, NIL, dtype=np.int64)
    col_match = np.full(ncols, NIL, dtype=np.int64)
    for a, b in match.items():
        if a >= n0 or b >= n0:  # pragma: no cover - all supers unwound
            raise AssertionError("contraction unwind left a super-vertex")
        if a < nrows <= b:
            row_match[a] = b - nrows
            col_match[b - nrows] = a
    matching = Matching(row_match, col_match)
    if with_stats:
        return matching, KarpSipserPlusStats(
            stats_deg1, stats_deg2, stats_rand
        )
    return matching
