"""Cheap matching heuristics — the ½-approximation baselines of Section 2.1.

The paper describes two classic variants:

* :func:`greedy_edge_matching` — visit edges in random order, match both
  endpoints if free (Dyer–Frieze analysis [13]; worst case ratio ½).
* :func:`greedy_vertex_matching` — repeatedly pick a random vertex with at
  least one live neighbour and match it with a random neighbour, removing
  matched and isolated vertices (Pothen–Fan's ½ proof [28]; slightly above
  ½ by Aronson et al. [2] / Poloczek–Szegedy [26]).

:func:`greedy_row_matching` is the simpler one-pass row variant frequently
used as a jump-start in transversal codes.
"""

from __future__ import annotations

import numpy as np

from repro._typing import SeedLike, rng_from
from repro.graph.csr import BipartiteGraph
from repro.matching.matching import NIL, Matching

__all__ = [
    "greedy_edge_matching",
    "greedy_row_matching",
    "greedy_vertex_matching",
]


def greedy_edge_matching(
    graph: BipartiteGraph, seed: SeedLike = None
) -> Matching:
    """Random-order maximal matching over the edges (cheap variant 1)."""
    rng = rng_from(seed)
    row_match = np.full(graph.nrows, NIL, dtype=np.int64)
    col_match = np.full(graph.ncols, NIL, dtype=np.int64)
    rows = graph.row_of_edge()
    cols = graph.col_ind
    for k in rng.permutation(graph.nnz):
        i = int(rows[k])
        j = int(cols[k])
        if row_match[i] == NIL and col_match[j] == NIL:
            row_match[i] = j
            col_match[j] = i
    return Matching(row_match, col_match)


def greedy_row_matching(
    graph: BipartiteGraph, seed: SeedLike = None
) -> Matching:
    """One pass over rows in random order; each row matches a random free
    neighbour if one exists."""
    rng = rng_from(seed)
    row_match = np.full(graph.nrows, NIL, dtype=np.int64)
    col_match = np.full(graph.ncols, NIL, dtype=np.int64)
    row_ptr = graph.row_ptr
    col_ind = graph.col_ind
    for i in rng.permutation(graph.nrows):
        lo, hi = int(row_ptr[i]), int(row_ptr[i + 1])
        if lo == hi:
            continue
        # Random scan order within the row.
        offs = rng.permutation(hi - lo)
        for o in offs:
            j = int(col_ind[lo + o])
            if col_match[j] == NIL:
                row_match[i] = j
                col_match[j] = int(i)
                break
    return Matching(row_match, col_match)


def greedy_vertex_matching(
    graph: BipartiteGraph, seed: SeedLike = None
) -> Matching:
    """Cheap variant 2: random vertex, random *live* neighbour, repeat.

    Maintains live degrees on both sides so a vertex whose neighbours are
    all matched is skipped (it became "isolated" in the paper's phrasing).
    The returned matching is maximal.
    """
    rng = rng_from(seed)
    nrows, ncols = graph.nrows, graph.ncols
    row_match = np.full(nrows, NIL, dtype=np.int64)
    col_match = np.full(ncols, NIL, dtype=np.int64)
    # Vertices 0..nrows-1 are rows; nrows..nrows+ncols-1 are columns.
    order = rng.permutation(nrows + ncols)
    for v in order:
        if v < nrows:
            i = int(v)
            if row_match[i] != NIL:
                continue
            nbrs = graph.row_neighbors(i)
            live = nbrs[col_match[nbrs] == NIL]
            if live.size:
                j = int(live[rng.integers(live.size)])
                row_match[i] = j
                col_match[j] = i
        else:
            j = int(v) - nrows
            if col_match[j] != NIL:
                continue
            nbrs = graph.col_neighbors(j)
            live = nbrs[row_match[nbrs] == NIL]
            if live.size:
                i = int(live[rng.integers(live.size)])
                row_match[i] = j
                col_match[j] = i
    return Matching(row_match, col_match)
