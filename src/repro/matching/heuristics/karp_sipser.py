"""The classic Karp–Sipser heuristic (Section 2.1 of the paper).

Phase 1: while a degree-one vertex exists, matching it with its unique
neighbour is an *optimal* decision — do so and delete both endpoints.
Phase 2: no degree-one vertex remains; pick a uniformly random live edge,
match its endpoints, delete them, and go back to Phase 1 (new degree-one
vertices may have appeared).

This implementation maintains live degrees with per-vertex skip pointers so
the total running time is linear in edges, and draws Phase-2 edges from a
pre-shuffled edge order (uniform over the surviving edges at each draw).

It is the baseline ``TwoSidedMatch`` is measured against in Table 1, where
the adversarial family of Figure 2 drives its quality down to ~0.67.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro._typing import SeedLike, rng_from
from repro.graph.csr import BipartiteGraph
from repro.matching.matching import NIL, Matching

__all__ = ["karp_sipser", "KarpSipserStats", "KarpSipserResult"]


@dataclass(frozen=True)
class KarpSipserStats:
    """Execution statistics of one Karp–Sipser run."""

    #: Matches made by the degree-one rule before the first random pick
    #: (the paper's "Phase 1").
    phase1_matches: int
    #: Random edge picks (each starts a new round of degree-one rules).
    random_picks: int
    #: Matches made by the degree-one rule after the first random pick.
    phase2_degree_one_matches: int

    @property
    def total_matches(self) -> int:
        return (
            self.phase1_matches
            + self.random_picks
            + self.phase2_degree_one_matches
        )


@dataclass(frozen=True)
class KarpSipserResult:
    matching: Matching
    stats: KarpSipserStats


def karp_sipser(
    graph: BipartiteGraph,
    seed: SeedLike = None,
    *,
    with_stats: bool = False,
) -> Matching | KarpSipserResult:
    """Run the Karp–Sipser heuristic on *graph*.

    Parameters
    ----------
    graph:
        The bipartite graph.
    seed:
        Randomness for Phase-2 edge picks (and nothing else; Phase 1 is
        deterministic given the worklist order).
    with_stats:
        If true, return a :class:`KarpSipserResult` carrying phase counts.

    Returns
    -------
    Matching or KarpSipserResult
        A maximal matching; maximum on graphs whose components are trees or
        unicyclic (see :mod:`repro.core.karp_sipser_mt` for the proof chain
        on choice subgraphs).
    """
    rng = rng_from(seed)
    nrows, ncols = graph.nrows, graph.ncols
    n = nrows + ncols

    deg = np.concatenate([graph.row_degrees(), graph.col_degrees()]).astype(
        np.int64
    )
    matched = np.zeros(n, dtype=bool)
    row_match = np.full(nrows, NIL, dtype=np.int64)
    col_match = np.full(ncols, NIL, dtype=np.int64)
    # Skip pointer: first potentially-live slot in each vertex's list.
    skip = np.zeros(n, dtype=np.int64)
    skip[:nrows] = graph.row_ptr[:-1]
    skip[nrows:] = graph.col_ptr[:-1]

    row_ptr, col_ind = graph.row_ptr, graph.col_ind
    col_ptr, row_ind = graph.col_ptr, graph.row_ind
    rows_of_edges = graph.row_of_edge()

    def neighbors_end(v: int) -> int:
        return int(row_ptr[v + 1]) if v < nrows else int(col_ptr[v - nrows + 1])

    def neighbor_at(v: int, k: int) -> int:
        """Neighbour in unified vertex ids."""
        if v < nrows:
            return int(col_ind[k]) + nrows
        return int(row_ind[k])

    def unique_live_neighbor(v: int) -> int:
        """The single live neighbour of a degree-one vertex *v*."""
        k = int(skip[v])
        end = neighbors_end(v)
        while k < end:
            u = neighbor_at(v, k)
            if not matched[u]:
                skip[v] = k
                return u
            k += 1
        return -1  # pragma: no cover - deg bookkeeping guarantees a hit

    def do_match(a: int, b: int) -> None:
        """Match unified vertices *a* (row side) and *b* (col side)."""
        matched[a] = True
        matched[b] = True
        if a < nrows:
            row_match[a] = b - nrows
            col_match[b - nrows] = a
        else:  # pragma: no cover - callers pass (row, col)
            row_match[b] = a - nrows
            col_match[a - nrows] = b
        for v in (a, b):
            end = neighbors_end(v)
            start = int(row_ptr[v]) if v < nrows else int(col_ptr[v - nrows])
            for k in range(start, end):
                u = neighbor_at(v, k)
                if not matched[u]:
                    deg[u] -= 1
                    if deg[u] == 1:
                        worklist.append(u)

    worklist: deque[int] = deque(np.flatnonzero(deg == 1).tolist())
    edge_order = rng.permutation(graph.nnz)
    edge_cursor = 0
    phase1 = 0
    picks = 0
    phase2_deg1 = 0

    while True:
        # Degree-one rule until exhaustion.
        while worklist:
            v = int(worklist.popleft())
            if matched[v] or deg[v] != 1:
                continue
            u = unique_live_neighbor(v)
            if u < 0:
                continue
            a, b = (v, u) if v < nrows else (u, v)
            do_match(a, b)
            if picks == 0:
                phase1 += 1
            else:
                phase2_deg1 += 1
        # Random edge pick among live edges.
        found = False
        while edge_cursor < graph.nnz:
            e = int(edge_order[edge_cursor])
            edge_cursor += 1
            i = int(rows_of_edges[e])
            j = int(col_ind[e]) + nrows
            if not matched[i] and not matched[j]:
                do_match(i, j)
                picks += 1
                found = True
                break
        if not found:
            break

    matching = Matching(row_match, col_match)
    if with_stats:
        return KarpSipserResult(
            matching,
            KarpSipserStats(phase1, picks, phase2_deg1),
        )
    return matching
