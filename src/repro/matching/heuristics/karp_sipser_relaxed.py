"""Relaxed bulk-synchronous parallel Karp–Sipser (the Azad et al. form).

The paper (Sections 1–2) notes that exact Karp–Sipser parallelises badly
— the degree-one worklist is a serial bottleneck — and that prior work
[4] therefore used "inflicted forms (successful but without any known
quality guarantee)".  ``TwoSidedMatch``'s contribution is precisely that
*its* Karp–Sipser (Algorithm 4) stays exact under parallelism.

To make that comparison concrete, this module implements the relaxed
form: a bulk-synchronous KS where ``p`` virtual threads act on a shared
degree *snapshot* per round:

* round start: degrees are snapshotted;
* every degree-one vertex (per the snapshot) is matched to its first
  live neighbour, conflicts resolved by claim order — decisions that
  were optimal at snapshot time may no longer be by the time they apply;
* if the snapshot had no degree-one vertex, each of the ``p`` threads
  matches one random live edge *simultaneously* — where serial KS would
  re-examine degrees after every single pick, the relaxed form commits
  ``p`` picks per synchronisation.

With ``p = 1`` and fresh snapshots this degenerates to (a variant of)
serial KS; as ``p`` grows, more random picks are committed per round and
quality drifts down — the behaviour the exact KarpSipserMT avoids by
construction.  See ``benchmarks/bench_ablation.py``.
"""

from __future__ import annotations

import numpy as np

from repro._typing import SeedLike, rng_from
from repro.errors import ShapeError
from repro.graph.csr import BipartiteGraph
from repro.matching.matching import NIL, Matching

__all__ = ["karp_sipser_relaxed"]


def karp_sipser_relaxed(
    graph: BipartiteGraph,
    n_threads: int = 4,
    seed: SeedLike = None,
) -> Matching:
    """Run the relaxed bulk-synchronous parallel Karp–Sipser.

    Parameters
    ----------
    graph:
        The bipartite graph.
    n_threads:
        Number of simultaneous random picks per synchronisation round
        (the virtual thread count).
    seed:
        Randomness for pick ordering.

    Returns
    -------
    Matching
        A valid, maximal matching (no quality guarantee — that is the
        point of this baseline).
    """
    if n_threads < 1:
        raise ShapeError(f"n_threads must be >= 1, got {n_threads}")
    rng = rng_from(seed)
    nrows, ncols = graph.nrows, graph.ncols
    n = nrows + ncols
    row_match = np.full(nrows, NIL, dtype=np.int64)
    col_match = np.full(ncols, NIL, dtype=np.int64)
    matched = np.zeros(n, dtype=bool)

    row_ptr, col_ind = graph.row_ptr, graph.col_ind
    col_ptr, row_ind = graph.col_ptr, graph.row_ind
    rows_of_edges = graph.row_of_edge()

    def live_degree(v: int) -> int:
        if v < nrows:
            nbrs = col_ind[row_ptr[v] : row_ptr[v + 1]]
            return int(np.count_nonzero(~matched[nbrs + nrows]))
        j = v - nrows
        nbrs = row_ind[col_ptr[j] : col_ptr[j + 1]]
        return int(np.count_nonzero(~matched[nbrs]))

    def first_live_neighbor(v: int) -> int:
        if v < nrows:
            nbrs = col_ind[row_ptr[v] : row_ptr[v + 1]] + nrows
        else:
            nbrs = row_ind[col_ptr[v - nrows] : col_ptr[v - nrows + 1]]
        live = nbrs[~matched[nbrs]]
        return int(live[0]) if live.size else -1

    def commit(a: int, b: int) -> None:
        matched[a] = True
        matched[b] = True
        if a < nrows:
            row_match[a] = b - nrows
            col_match[b - nrows] = a
        else:
            row_match[b] = a - nrows
            col_match[a - nrows] = b

    edge_order = rng.permutation(graph.nnz)
    edge_cursor = 0

    while True:
        # ---- snapshot degrees for this round --------------------------
        degrees = np.empty(n, dtype=np.int64)
        for v in range(n):
            degrees[v] = 0 if matched[v] else live_degree(v)
        deg_one = np.flatnonzero(degrees == 1)
        if deg_one.size:
            # All snapshot-degree-one vertices act "simultaneously":
            # claims are resolved by (shuffled) order, and a vertex whose
            # unique neighbour was stolen in the same round simply fails
            # (the staleness that loses optimality).
            for v in rng.permutation(deg_one):
                v = int(v)
                if matched[v]:
                    continue
                u = first_live_neighbor(v)
                if u < 0:
                    continue
                a, b = (v, u) if v < nrows else (u, v)
                commit(a, b)
            continue
        # ---- no degree-one: p simultaneous random picks ---------------
        picks = 0
        while picks < n_threads and edge_cursor < graph.nnz:
            e = int(edge_order[edge_cursor])
            edge_cursor += 1
            i = int(rows_of_edges[e])
            j = int(col_ind[e]) + nrows
            if not matched[i] and not matched[j]:
                commit(i, j)
                picks += 1
        if picks == 0:
            break  # no live edge remains

    return Matching(row_match, col_match)
