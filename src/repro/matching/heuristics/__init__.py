"""Heuristic matching baselines (cheap matching variants, Karp–Sipser)."""

from repro.matching.heuristics.greedy import (
    greedy_edge_matching,
    greedy_row_matching,
    greedy_vertex_matching,
)
from repro.matching.heuristics.karp_sipser import karp_sipser, KarpSipserStats
from repro.matching.heuristics.karp_sipser_relaxed import karp_sipser_relaxed
from repro.matching.heuristics.karp_sipser_plus import karp_sipser_plus, KarpSipserPlusStats

__all__ = [
    "greedy_edge_matching",
    "greedy_row_matching",
    "greedy_vertex_matching",
    "karp_sipser",
    "karp_sipser_relaxed",
    "karp_sipser_plus",
    "KarpSipserPlusStats",
    "KarpSipserStats",
]
