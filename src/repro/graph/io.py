"""Reading and writing graph patterns.

Supports the MatrixMarket coordinate format (the interchange format of the
UFL/SuiteSparse collection the paper draws its instances from) and a fast
``.npz`` binary cache for repeated benchmark runs.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import GraphStructureError
from repro.graph.build import from_edges
from repro.graph.csr import BipartiteGraph

__all__ = [
    "read_matrix_market",
    "write_matrix_market",
    "save_npz",
    "load_npz",
]


def read_matrix_market(path: str | os.PathLike) -> BipartiteGraph:
    """Read a MatrixMarket coordinate file as a pattern.

    ``pattern``, ``real``, ``integer`` and ``complex`` fields are accepted
    (values are discarded — the paper's algorithms use the pattern only).
    ``symmetric`` and ``skew-symmetric`` storage is expanded to general.
    """
    path = Path(path)
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise GraphStructureError(f"{path}: missing MatrixMarket header")
        tokens = header.strip().split()
        if len(tokens) < 5 or tokens[1] != "matrix" or tokens[2] != "coordinate":
            raise GraphStructureError(
                f"{path}: only coordinate matrices are supported"
            )
        field = tokens[3]
        symmetry = tokens[4]
        if field not in {"pattern", "real", "integer", "complex"}:
            raise GraphStructureError(f"{path}: unsupported field {field!r}")
        if symmetry not in {"general", "symmetric", "skew-symmetric"}:
            raise GraphStructureError(
                f"{path}: unsupported symmetry {symmetry!r}"
            )
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        parts = line.split()
        if len(parts) != 3:
            raise GraphStructureError(f"{path}: malformed size line")
        nrows, ncols, nnz = (int(p) for p in parts)
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        for k in range(nnz):
            entry = fh.readline().split()
            if len(entry) < 2:
                raise GraphStructureError(f"{path}: truncated at entry {k}")
            rows[k] = int(entry[0]) - 1
            cols[k] = int(entry[1]) - 1
    if symmetry in {"symmetric", "skew-symmetric"}:
        off_diag = rows != cols
        rows, cols = (
            np.concatenate([rows, cols[off_diag]]),
            np.concatenate([cols, rows[off_diag]]),
        )
    return from_edges(nrows, ncols, rows, cols)


def write_matrix_market(
    graph: BipartiteGraph, path: str | os.PathLike
) -> None:
    """Write *graph* as a general pattern MatrixMarket coordinate file."""
    path = Path(path)
    rows = graph.row_of_edge()
    cols = graph.col_ind
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("%%MatrixMarket matrix coordinate pattern general\n")
        fh.write("%% written by repro\n")
        fh.write(f"{graph.nrows} {graph.ncols} {graph.nnz}\n")
        for k in range(graph.nnz):
            fh.write(f"{int(rows[k]) + 1} {int(cols[k]) + 1}\n")


def save_npz(graph: BipartiteGraph, path: str | os.PathLike) -> None:
    """Binary cache of the CSR arrays (fast reload for benchmarks)."""
    np.savez_compressed(
        path,
        nrows=np.int64(graph.nrows),
        ncols=np.int64(graph.ncols),
        row_ptr=graph.row_ptr,
        col_ind=graph.col_ind,
    )


def load_npz(path: str | os.PathLike) -> BipartiteGraph:
    """Load a graph written by :func:`save_npz`."""
    with np.load(path) as data:
        return BipartiteGraph(
            int(data["nrows"]),
            int(data["ncols"]),
            data["row_ptr"],
            data["col_ind"],
            validate=False,
        )
