"""Reading and writing graph patterns.

Supports the MatrixMarket coordinate format (the interchange format of the
UFL/SuiteSparse collection the paper draws its instances from) and a fast
``.npz`` binary cache for repeated benchmark runs.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import GraphStructureError
from repro.graph.build import from_edges
from repro.graph.csr import BipartiteGraph

__all__ = [
    "read_matrix_market",
    "write_matrix_market",
    "save_npz",
    "load_npz",
]


def _fail(path: Path, lineno: int, message: str) -> GraphStructureError:
    """Build a parse error pinned to *path*, line *lineno* (1-based)."""
    return GraphStructureError(f"{path}:{lineno}: {message}")


def read_matrix_market(path: str | os.PathLike) -> BipartiteGraph:
    """Read a MatrixMarket coordinate file as a pattern.

    ``pattern``, ``real``, ``integer`` and ``complex`` fields are accepted
    (values are discarded — the paper's algorithms use the pattern only).
    ``symmetric`` and ``skew-symmetric`` storage is expanded to general.

    Malformed input raises :class:`~repro.errors.GraphStructureError`
    naming the file and the 1-based line number of the offending line —
    a corrupted download should be diagnosable from the message alone.
    """
    path = Path(path)
    with open(path, "r", encoding="utf-8") as fh:
        lineno = 1
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise _fail(
                path, lineno,
                "missing '%%MatrixMarket' header (is this a MatrixMarket "
                "file?)",
            )
        tokens = header.strip().split()
        if len(tokens) < 5 or tokens[1] != "matrix" or tokens[2] != "coordinate":
            raise _fail(
                path, lineno,
                f"only 'matrix coordinate' objects are supported, got "
                f"header {header.strip()!r}",
            )
        field = tokens[3]
        symmetry = tokens[4]
        if field not in {"pattern", "real", "integer", "complex"}:
            raise _fail(path, lineno, f"unsupported field {field!r}")
        if symmetry not in {"general", "symmetric", "skew-symmetric"}:
            raise _fail(path, lineno, f"unsupported symmetry {symmetry!r}")
        line = fh.readline()
        lineno += 1
        while line.startswith("%"):
            line = fh.readline()
            lineno += 1
        if not line:
            raise _fail(path, lineno, "file ends before the size line")
        parts = line.split()
        if len(parts) != 3:
            raise _fail(
                path, lineno,
                f"size line must be 'nrows ncols nnz', got {line.strip()!r}",
            )
        try:
            nrows, ncols, nnz = (int(p) for p in parts)
        except ValueError:
            raise _fail(
                path, lineno,
                f"non-integer value on the size line: {line.strip()!r}",
            ) from None
        if nrows < 0 or ncols < 0 or nnz < 0:
            raise _fail(
                path, lineno,
                f"negative dimension on the size line: {line.strip()!r}",
            )
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        for k in range(nnz):
            line = fh.readline()
            lineno += 1
            if not line:
                raise _fail(
                    path, lineno,
                    f"file ends after {k} of {nnz} entries (truncated?)",
                )
            entry = line.split()
            if len(entry) < 2:
                raise _fail(
                    path, lineno,
                    f"entry must be 'row col [value]', got {line.strip()!r}",
                )
            try:
                i, j = int(entry[0]), int(entry[1])
            except ValueError:
                raise _fail(
                    path, lineno,
                    f"non-integer coordinate in entry: {line.strip()!r}",
                ) from None
            if not (1 <= i <= nrows and 1 <= j <= ncols):
                raise _fail(
                    path, lineno,
                    f"entry ({i}, {j}) outside the declared "
                    f"{nrows} x {ncols} matrix (indices are 1-based)",
                )
            rows[k] = i - 1
            cols[k] = j - 1
    if symmetry in {"symmetric", "skew-symmetric"}:
        off_diag = rows != cols
        rows, cols = (
            np.concatenate([rows, cols[off_diag]]),
            np.concatenate([cols, rows[off_diag]]),
        )
    return from_edges(nrows, ncols, rows, cols)


def write_matrix_market(
    graph: BipartiteGraph, path: str | os.PathLike
) -> None:
    """Write *graph* as a general pattern MatrixMarket coordinate file."""
    path = Path(path)
    rows = graph.row_of_edge()
    cols = graph.col_ind
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("%%MatrixMarket matrix coordinate pattern general\n")
        fh.write("%% written by repro\n")
        fh.write(f"{graph.nrows} {graph.ncols} {graph.nnz}\n")
        for k in range(graph.nnz):
            fh.write(f"{int(rows[k]) + 1} {int(cols[k]) + 1}\n")


def save_npz(graph: BipartiteGraph, path: str | os.PathLike) -> None:
    """Binary cache of the CSR arrays (fast reload for benchmarks)."""
    np.savez_compressed(
        path,
        nrows=np.int64(graph.nrows),
        ncols=np.int64(graph.ncols),
        row_ptr=graph.row_ptr,
        col_ind=graph.col_ind,
    )


def load_npz(path: str | os.PathLike) -> BipartiteGraph:
    """Load a graph written by :func:`save_npz`."""
    with np.load(path) as data:
        return BipartiteGraph(
            int(data["nrows"]),
            int(data["ncols"]),
            data["row_ptr"],
            data["col_ind"],
            validate=False,
        )
