"""Constructors for :class:`~repro.graph.BipartiteGraph`.

These accept the loose formats users actually have (edge lists, dense
arrays, scipy sparse matrices, adjacency lists) and produce a canonical,
deduplicated, sorted CSR pattern.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro._typing import IndexArray
from repro.errors import GraphStructureError, ShapeError
from repro.graph.csr import BipartiteGraph

__all__ = [
    "from_edges",
    "from_dense",
    "from_scipy",
    "from_adjacency_lists",
    "empty",
    "identity",
]


def from_edges(
    nrows: int,
    ncols: int,
    rows: object,
    cols: object,
    *,
    dedup: bool = True,
) -> BipartiteGraph:
    """Build a graph from parallel arrays of edge endpoints.

    Parameters
    ----------
    rows, cols:
        Equal-length integer sequences; edge ``k`` is ``(rows[k], cols[k])``.
    dedup:
        Remove duplicate edges (default).  With ``dedup=False`` a duplicate
        raises :class:`GraphStructureError` instead of being silently merged.
    """
    r = np.asarray(rows, dtype=np.int64).ravel()
    c = np.asarray(cols, dtype=np.int64).ravel()
    if r.shape != c.shape:
        raise ShapeError(f"rows and cols differ in length: {r.shape} vs {c.shape}")
    if r.size:
        if r.min() < 0 or r.max() >= nrows:
            raise GraphStructureError(f"row indices out of range [0, {nrows})")
        if c.min() < 0 or c.max() >= ncols:
            raise GraphStructureError(f"column indices out of range [0, {ncols})")
    # Sort lexicographically by (row, col) to get CSR order.
    order = np.lexsort((c, r))
    r = r[order]
    c = c[order]
    if r.size:
        dup = np.zeros(r.shape[0], dtype=bool)
        dup[1:] = (r[1:] == r[:-1]) & (c[1:] == c[:-1])
        if dup.any():
            if not dedup:
                k = int(np.flatnonzero(dup)[0])
                raise GraphStructureError(
                    f"duplicate edge ({r[k]}, {c[k]}) with dedup=False"
                )
            keep = ~dup
            r = r[keep]
            c = c[keep]
    row_ptr = np.zeros(nrows + 1, dtype=np.int64)
    np.cumsum(np.bincount(r, minlength=nrows), out=row_ptr[1:])
    return BipartiteGraph(nrows, ncols, row_ptr, c, validate=False)


def from_dense(dense: object) -> BipartiteGraph:
    """Build a graph from a dense 2-D array; any nonzero entry is an edge."""
    a = np.asarray(dense)
    if a.ndim != 2:
        raise ShapeError(f"dense input must be 2-D, got shape {a.shape}")
    rows, cols = np.nonzero(a)
    return from_edges(a.shape[0], a.shape[1], rows, cols)


def from_scipy(mat: object) -> BipartiteGraph:
    """Build a graph from any scipy sparse matrix (pattern only)."""
    from scipy.sparse import issparse

    if not issparse(mat):
        raise ShapeError("from_scipy expects a scipy sparse matrix")
    coo = mat.tocoo()
    return from_edges(coo.shape[0], coo.shape[1], coo.row, coo.col)


def from_adjacency_lists(
    nrows: int, ncols: int, adjacency: Sequence[Iterable[int]]
) -> BipartiteGraph:
    """Build a graph from per-row neighbour lists.

    ``adjacency[i]`` is an iterable of the columns adjacent to row ``i``.
    """
    if len(adjacency) != nrows:
        raise ShapeError(
            f"adjacency has {len(adjacency)} rows, expected {nrows}"
        )
    lists = [np.asarray(sorted(set(int(j) for j in nbrs)), dtype=np.int64)
             for nbrs in adjacency]
    degs = np.array([a.shape[0] for a in lists], dtype=np.int64)
    row_ptr = np.zeros(nrows + 1, dtype=np.int64)
    np.cumsum(degs, out=row_ptr[1:])
    col_ind = (
        np.concatenate(lists) if lists else np.empty(0, dtype=np.int64)
    )
    return BipartiteGraph(nrows, ncols, row_ptr, col_ind)


def empty(nrows: int, ncols: int) -> BipartiteGraph:
    """A graph with no edges."""
    return BipartiteGraph(
        nrows,
        ncols,
        np.zeros(nrows + 1, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        validate=False,
    )


def identity(n: int) -> BipartiteGraph:
    """The ``n × n`` identity pattern (a perfect matching as a graph)."""
    row_ptr: IndexArray = np.arange(n + 1, dtype=np.int64)
    col_ind: IndexArray = np.arange(n, dtype=np.int64)
    return BipartiteGraph(n, n, row_ptr, col_ind, validate=False)
