"""Structural diagnostics of a bipartite graph / sparse pattern.

These are the quantities the paper's evaluation reports per instance
(Table 3): size, edge count, average degree, degree variance (the
load-imbalance indicator for ``torso1``/``audikw_1``), structural rank
ratio, and support properties.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import BipartiteGraph

__all__ = [
    "DegreeStatistics",
    "degree_statistics",
    "is_perfect_matchable",
    "has_total_support_certificate",
]


@dataclass(frozen=True)
class DegreeStatistics:
    """Degree summary of one vertex class."""

    minimum: int
    maximum: int
    mean: float
    variance: float
    empty_count: int

    @classmethod
    def of(cls, degrees: np.ndarray) -> "DegreeStatistics":
        if degrees.size == 0:
            return cls(0, 0, 0.0, 0.0, 0)
        return cls(
            minimum=int(degrees.min()),
            maximum=int(degrees.max()),
            mean=float(degrees.mean()),
            variance=float(degrees.var()),
            empty_count=int(np.count_nonzero(degrees == 0)),
        )


def degree_statistics(
    graph: BipartiteGraph,
) -> tuple[DegreeStatistics, DegreeStatistics]:
    """Degree statistics ``(rows, columns)`` of *graph*."""
    return (
        DegreeStatistics.of(graph.row_degrees()),
        DegreeStatistics.of(graph.col_degrees()),
    )


def is_perfect_matchable(graph: BipartiteGraph) -> bool:
    """True iff the graph has a matching covering every vertex.

    Requires a square shape; computed with the exact Hopcroft–Karp matcher
    (the matrix "has support" in the paper's terminology).
    """
    if not graph.is_square:
        return False
    from repro.matching.exact.hopcroft_karp import hopcroft_karp

    return hopcroft_karp(graph).cardinality == graph.nrows


def has_total_support_certificate(graph: BipartiteGraph) -> bool:
    """True iff every edge of *graph* lies on some perfect matching.

    This is the "total support" condition required by Sinkhorn–Knopp
    convergence with positive diagonals (Section 2.2).  Decided exactly via
    the Dulmage–Mendelsohn decomposition: the matrix has total support iff
    the DM square block covers everything *and* no edge falls in an
    off-diagonal ("*") block of the fine decomposition.
    """
    if not graph.is_square or not is_perfect_matchable(graph):
        return False
    from repro.graph.dm import dulmage_mendelsohn

    dm = dulmage_mendelsohn(graph)
    return dm.total_support
