"""Dulmage–Mendelsohn decomposition of a bipartite graph.

Section 3.3 of the paper uses the canonical DM block triangular form

::

        | H  *  * |
    A = | O  S  * |         with S itself block upper triangular when it
        | O  O  V |         lacks total support,

to explain what scaling does to matrices *without* perfect matchings: the
entries in the "*" blocks cannot be on any maximum matching and are driven
to zero by Sinkhorn–Knopp, so the randomized heuristics effectively never
pick them.  This module computes:

* the coarse decomposition — the horizontal (H), square (S), and vertical
  (V) row/column sets, from the reachability structure of one maximum
  matching;
* the fine decomposition of S — strongly connected components of the
  matching-contracted digraph;
* the per-edge *matchable* mask — edges that can appear in some maximum
  matching (equivalently: not in any "*" block), which is the certificate
  for total support.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import BoolArray, IndexArray
from repro.graph.csr import BipartiteGraph
from repro.matching.matching import NIL, Matching

__all__ = ["CoarseDM", "dulmage_mendelsohn"]


@dataclass(frozen=True)
class CoarseDM:
    """Result of :func:`dulmage_mendelsohn`.

    Row/column membership arrays take values ``'H'``, ``'S'``, ``'V'``
    encoded as integers 0, 1, 2 (:data:`H_BLOCK`, :data:`S_BLOCK`,
    :data:`V_BLOCK`).
    """

    H_BLOCK = 0
    S_BLOCK = 1
    V_BLOCK = 2

    #: Per-row block id (0=H, 1=S, 2=V).
    row_block: IndexArray
    #: Per-column block id.
    col_block: IndexArray
    #: The maximum matching used for the decomposition.
    matching: Matching
    #: Fine decomposition: SCC label of each row of S (NIL outside S).
    row_scc: IndexArray
    #: SCC label of each column of S (NIL outside S).
    col_scc: IndexArray
    #: Number of fine (SCC) blocks within S.
    n_scc: int
    #: Per-edge (CSR order) flag: True iff the edge can be put into some
    #: maximum-cardinality matching.
    matchable_edges: BoolArray

    # ------------------------------------------------------------------
    @property
    def sprank(self) -> int:
        return self.matching.cardinality

    def rows_of(self, block: int) -> IndexArray:
        return np.flatnonzero(self.row_block == block)

    def cols_of(self, block: int) -> IndexArray:
        return np.flatnonzero(self.col_block == block)

    @property
    def total_support(self) -> bool:
        """True iff every edge lies on a perfect matching.

        Requires: H and V empty (so the matrix is square with a perfect
        matching) and every edge matchable.
        """
        return (
            self.rows_of(self.H_BLOCK).size == 0
            and self.rows_of(self.V_BLOCK).size == 0
            and self.cols_of(self.H_BLOCK).size == 0
            and self.cols_of(self.V_BLOCK).size == 0
            and bool(np.all(self.matchable_edges))
        )

    @property
    def fully_indecomposable(self) -> bool:
        """Total support and a single fine block."""
        return self.total_support and self.n_scc <= 1


def _alternating_reach_from_rows(
    graph: BipartiteGraph, matching: Matching, seeds: IndexArray
) -> tuple[BoolArray, BoolArray]:
    """Rows/cols reachable from seed rows via alternating paths that leave a
    row on *any* edge and leave a column on its *matched* edge."""
    row_seen = np.zeros(graph.nrows, dtype=bool)
    col_seen = np.zeros(graph.ncols, dtype=bool)
    stack = list(map(int, seeds))
    row_seen[seeds] = True
    cm = matching.col_match
    while stack:
        i = stack.pop()
        for j in graph.row_neighbors(i):
            j = int(j)
            if col_seen[j]:
                continue
            col_seen[j] = True
            i2 = int(cm[j])
            if i2 != NIL and not row_seen[i2]:
                row_seen[i2] = True
                stack.append(i2)
    return row_seen, col_seen


def _alternating_reach_from_cols(
    graph: BipartiteGraph, matching: Matching, seeds: IndexArray
) -> tuple[BoolArray, BoolArray]:
    """Mirror of :func:`_alternating_reach_from_rows` starting at columns."""
    row_seen = np.zeros(graph.nrows, dtype=bool)
    col_seen = np.zeros(graph.ncols, dtype=bool)
    stack = list(map(int, seeds))
    col_seen[seeds] = True
    rm = matching.row_match
    while stack:
        j = stack.pop()
        for i in graph.col_neighbors(j):
            i = int(i)
            if row_seen[i]:
                continue
            row_seen[i] = True
            j2 = int(rm[i])
            if j2 != NIL and not col_seen[j2]:
                col_seen[j2] = True
                stack.append(j2)
    return row_seen, col_seen


def _scc_of_square_part(
    graph: BipartiteGraph,
    matching: Matching,
    in_s_row: BoolArray,
    in_s_col: BoolArray,
) -> tuple[IndexArray, IndexArray, int]:
    """Tarjan SCC on the matching-contracted digraph of the square part.

    Node = matched pair, indexed by its column id.  Arc ``j -> j2`` exists
    when the row matched to ``j`` has an edge to column ``j2 != j`` inside S.
    """
    cm = matching.col_match
    s_cols = np.flatnonzero(in_s_col)
    n_nodes = s_cols.shape[0]
    node_of_col = np.full(graph.ncols, NIL, dtype=np.int64)
    node_of_col[s_cols] = np.arange(n_nodes, dtype=np.int64)

    # Build adjacency (arrays of arrays would be wasteful; flatten to CSR).
    arc_src: list[np.ndarray] = []
    arc_dst: list[np.ndarray] = []
    for node, j in enumerate(s_cols):
        i = int(cm[j])
        nbrs = graph.row_neighbors(i)
        targets = node_of_col[nbrs]
        targets = targets[(targets != NIL) & (targets != node)]
        if targets.size:
            arc_src.append(np.full(targets.size, node, dtype=np.int64))
            arc_dst.append(targets.astype(np.int64))
    if arc_src:
        src = np.concatenate(arc_src)
        dst = np.concatenate(arc_dst)
    else:
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    adj_ptr = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n_nodes), out=adj_ptr[1:])

    # Iterative Tarjan.
    UNVISITED = -1
    index = np.full(n_nodes, UNVISITED, dtype=np.int64)
    low = np.zeros(n_nodes, dtype=np.int64)
    on_stack = np.zeros(n_nodes, dtype=bool)
    comp = np.full(n_nodes, NIL, dtype=np.int64)
    scc_stack: list[int] = []
    next_index = 0
    n_comp = 0
    ptr = adj_ptr[:-1].copy()
    for root in range(n_nodes):
        if index[root] != UNVISITED:
            continue
        call_stack = [root]
        while call_stack:
            v = call_stack[-1]
            if index[v] == UNVISITED:
                index[v] = low[v] = next_index
                next_index += 1
                scc_stack.append(v)
                on_stack[v] = True
            advanced = False
            while ptr[v] < adj_ptr[v + 1]:
                w = int(dst[ptr[v]])
                ptr[v] += 1
                if index[w] == UNVISITED:
                    call_stack.append(w)
                    advanced = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            if low[v] == index[v]:
                while True:
                    w = scc_stack.pop()
                    on_stack[w] = False
                    comp[w] = n_comp
                    if w == v:
                        break
                n_comp += 1
            call_stack.pop()
            if call_stack:
                parent = call_stack[-1]
                low[parent] = min(low[parent], low[v])

    col_scc = np.full(graph.ncols, NIL, dtype=np.int64)
    col_scc[s_cols] = comp
    row_scc = np.full(graph.nrows, NIL, dtype=np.int64)
    s_rows = cm[s_cols]
    row_scc[s_rows] = comp
    return row_scc, col_scc, n_comp


def dulmage_mendelsohn(
    graph: BipartiteGraph, matching: Matching | None = None
) -> CoarseDM:
    """Compute the coarse + fine DM decomposition of *graph*.

    Parameters
    ----------
    graph:
        Any bipartite graph (square or rectangular).
    matching:
        Optional *maximum* matching to reuse; computed with Hopcroft–Karp
        if absent.  (A non-maximum matching would give a wrong
        decomposition; cardinality is verified when one is supplied.)
    """
    if matching is None:
        from repro.matching.exact.hopcroft_karp import hopcroft_karp

        matching = hopcroft_karp(graph)
    else:
        matching.validate(graph)
        from repro.matching.exact.hopcroft_karp import hopcroft_karp

        if hopcroft_karp(graph, initial=matching).cardinality != (
            matching.cardinality
        ):
            from repro.errors import MatchingError

            raise MatchingError(
                "dulmage_mendelsohn requires a maximum matching"
            )

    # Vertical part: alternating reach from unmatched rows.
    v_rows, v_cols = _alternating_reach_from_rows(
        graph, matching, matching.unmatched_rows()
    )
    # Horizontal part: alternating reach from unmatched columns.
    h_rows, h_cols = _alternating_reach_from_cols(
        graph, matching, matching.unmatched_cols()
    )

    row_block = np.full(graph.nrows, CoarseDM.S_BLOCK, dtype=np.int64)
    col_block = np.full(graph.ncols, CoarseDM.S_BLOCK, dtype=np.int64)
    row_block[h_rows] = CoarseDM.H_BLOCK
    col_block[h_cols] = CoarseDM.H_BLOCK
    row_block[v_rows] = CoarseDM.V_BLOCK
    col_block[v_cols] = CoarseDM.V_BLOCK

    in_s_row = row_block == CoarseDM.S_BLOCK
    in_s_col = col_block == CoarseDM.S_BLOCK
    row_scc, col_scc, n_scc = _scc_of_square_part(
        graph, matching, in_s_row, in_s_col
    )

    # Edge matchability:
    #  * inside S: both endpoints in the same SCC;
    #  * H block: row in H, column in H (every such edge can be chosen for
    #    its row by swapping along alternating paths);
    #  * V block: both endpoints in V;
    #  * across blocks ("*" positions): never matchable.
    rows_of_edges = graph.row_of_edge()
    cols_of_edges = graph.col_ind
    rb = row_block[rows_of_edges]
    cb = col_block[cols_of_edges]
    matchable = np.zeros(graph.nnz, dtype=bool)
    same_block = rb == cb
    s_edges = same_block & (rb == CoarseDM.S_BLOCK)
    matchable[s_edges] = (
        row_scc[rows_of_edges[s_edges]] == col_scc[cols_of_edges[s_edges]]
    )
    matchable[same_block & (rb != CoarseDM.S_BLOCK)] = True

    return CoarseDM(
        row_block=row_block,
        col_block=col_block,
        matching=matching,
        row_scc=row_scc,
        col_scc=col_scc,
        n_scc=n_scc,
        matchable_edges=matchable,
    )
