"""Terminal visualisation helpers for small graphs and matchings.

Useful when debugging the algorithms on toy instances (the paper's
Figure 1/Figure 2 scale):

* :func:`spy` — an ASCII "spy plot" of the pattern, optionally
  highlighting a matching and/or a DM block structure;
* :func:`choice_diagram` — the choice subgraph as adjacency text
  (``r3 -> c7``), component by component.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IndexArray
from repro.errors import ShapeError
from repro.graph.csr import BipartiteGraph
from repro.matching.matching import NIL, Matching

__all__ = ["spy", "choice_diagram"]

_MAX_SPY = 200


def spy(
    graph: BipartiteGraph,
    matching: Matching | None = None,
    *,
    max_dim: int = _MAX_SPY,
) -> str:
    """ASCII spy plot: ``.`` empty, ``*`` edge, ``@`` matched edge.

    Raises :class:`ShapeError` beyond ``max_dim`` in either dimension —
    this is a toy-scale debugging tool, not a renderer.
    """
    if graph.nrows > max_dim or graph.ncols > max_dim:
        raise ShapeError(
            f"spy() is for small graphs (<= {max_dim}); "
            f"got {graph.nrows} x {graph.ncols}"
        )
    grid = np.full((graph.nrows, graph.ncols), ".", dtype="<U1")
    grid[graph.row_of_edge(), graph.col_ind] = "*"
    if matching is not None:
        for i, j in matching.pairs():
            grid[i, j] = "@"
    header = "    " + "".join(str(j % 10) for j in range(graph.ncols))
    lines = [header]
    for i in range(graph.nrows):
        lines.append(f"{i:3d} " + "".join(grid[i]))
    return "\n".join(lines)


def choice_diagram(
    row_choice: IndexArray, col_choice: IndexArray, *, max_dim: int = _MAX_SPY
) -> str:
    """Textual rendering of a choice subgraph, grouped by component."""
    from repro.core.karp_sipser_mt import choice_graph
    from repro.graph.components import connected_components

    row_choice = np.asarray(row_choice, dtype=np.int64)
    col_choice = np.asarray(col_choice, dtype=np.int64)
    nrows, ncols = row_choice.shape[0], col_choice.shape[0]
    if nrows > max_dim or ncols > max_dim:
        raise ShapeError(f"choice_diagram() is for small graphs (<= {max_dim})")
    g = choice_graph(row_choice, col_choice)
    info = connected_components(g)
    lines: list[str] = []
    for comp in range(info.n_components):
        rows = np.flatnonzero(info.row_labels == comp)
        cols = np.flatnonzero(info.col_labels == comp)
        if rows.size + cols.size <= 1:
            continue  # skip isolated vertices
        lines.append(f"component {comp} ({rows.size}+{cols.size} vertices):")
        for i in rows:
            if row_choice[i] != NIL:
                lines.append(f"  r{int(i)} -> c{int(row_choice[i])}")
        for j in cols:
            if col_choice[j] != NIL:
                lines.append(f"  c{int(j)} -> r{int(col_choice[j])}")
    return "\n".join(lines) if lines else "(no non-trivial components)"
