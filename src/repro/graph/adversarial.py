"""Adversarial instance families.

:func:`karp_sipser_adversarial` is the matrix class of the paper's Figure 2
and Table 1 — designed so the classic Karp–Sipser heuristic makes bad random
choices while ``TwoSidedMatch``'s scaling steers the probability mass onto
the edges of the (unique-by-construction) perfect matching.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.graph.build import from_edges
from repro.graph.csr import BipartiteGraph

__all__ = ["karp_sipser_adversarial", "hidden_perfect_matching"]


def karp_sipser_adversarial(n: int, k: int) -> BipartiteGraph:
    """The bad-for-Karp–Sipser family of the paper's Figure 2.

    Layout (``h = n/2``; ``R1``/``C1`` are the first ``h`` rows/columns,
    ``R2``/``C2`` the last ``h``):

    * block ``R1 × C1`` is completely full;
    * the last ``k`` rows of ``R1`` are full across *all* columns, and the
      last ``k`` columns of ``C1`` are full across *all* rows;
    * blocks ``R1 × C2`` and ``R2 × C1`` each carry a nonzero diagonal
      (``(i, h+i)`` and ``(h+i, i)``), which together form a perfect
      matching;
    * block ``R2 × C2`` is empty.

    For ``k <= 1`` Karp–Sipser solves the instance in Phase 1; for ``k > 1``
    there is no degree-one vertex, Phase 2 starts immediately, and a uniform
    random edge choice almost surely burns a useful ``R1`` row on a useless
    ``C1`` column (Table 1 shows quality dropping toward ~0.67 at k=32).

    Parameters
    ----------
    n:
        Total rows (= columns).  Must be even and ``>= 2k``.
    k:
        Number of full rows/columns spanning both halves (``k << n``).
    """
    if n % 2 != 0:
        raise ShapeError(f"n must be even, got {n}")
    h = n // 2
    if not 0 <= k <= h:
        raise ShapeError(f"k must be in [0, {h}], got {k}")

    rows_parts: list[np.ndarray] = []
    cols_parts: list[np.ndarray] = []

    ar_h = np.arange(h, dtype=np.int64)

    # R1 x C1 full block.
    rows_parts.append(np.repeat(ar_h, h))
    cols_parts.append(np.tile(ar_h, h))

    if k > 0:
        last_k = np.arange(h - k, h, dtype=np.int64)
        all_n = np.arange(n, dtype=np.int64)
        # Last k rows of R1 full across all columns.
        rows_parts.append(np.repeat(last_k, n))
        cols_parts.append(np.tile(all_n, k))
        # Last k columns of C1 full across all rows.
        rows_parts.append(np.tile(all_n, k))
        cols_parts.append(np.repeat(last_k, n))

    # Diagonal of R1 x C2 and of R2 x C1 (the hidden perfect matching).
    rows_parts.append(ar_h)
    cols_parts.append(ar_h + h)
    rows_parts.append(ar_h + h)
    cols_parts.append(ar_h)

    return from_edges(
        n,
        n,
        np.concatenate(rows_parts),
        np.concatenate(cols_parts),
    )


def hidden_perfect_matching(n: int) -> np.ndarray:
    """The planted perfect matching of :func:`karp_sipser_adversarial`.

    Returns ``match_row_to_col`` of length ``n``: row ``i`` in ``R1`` pairs
    with column ``h+i``; row ``h+i`` in ``R2`` pairs with column ``i``.
    """
    if n % 2 != 0:
        raise ShapeError(f"n must be even, got {n}")
    h = n // 2
    out = np.empty(n, dtype=np.int64)
    out[:h] = np.arange(h, n, dtype=np.int64)
    out[h:] = np.arange(0, h, dtype=np.int64)
    return out
