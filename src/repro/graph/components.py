"""Connected components of a bipartite graph, and per-component cycle counts.

Used to verify the paper's Lemma 1: every connected component of the
subgraph built by ``TwoSidedMatch`` contains *at most one* simple cycle
(equivalently, edges <= vertices in every component).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import IndexArray
from repro.graph.csr import BipartiteGraph

__all__ = ["connected_components", "component_cycle_counts", "ComponentInfo"]


@dataclass(frozen=True)
class ComponentInfo:
    """Connected-component labelling of a bipartite graph.

    Row vertex ``i`` has label ``row_labels[i]``; column vertex ``j`` has
    label ``col_labels[j]``.  Labels are dense in ``range(n_components)``.
    """

    n_components: int
    row_labels: IndexArray
    col_labels: IndexArray

    def sizes(self) -> IndexArray:
        """Vertices per component (rows + columns)."""
        return np.bincount(self.row_labels, minlength=self.n_components) + \
            np.bincount(self.col_labels, minlength=self.n_components)


class _UnionFind:
    """Array-based union-find with path halving and union by size."""

    __slots__ = ("parent", "size")

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, x: int) -> int:
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]
            x = p[x]
        return int(x)

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


def connected_components(graph: BipartiteGraph) -> ComponentInfo:
    """Label connected components (isolated vertices get their own label)."""
    n = graph.nrows + graph.ncols
    uf = _UnionFind(n)
    rows = graph.row_of_edge()
    cols = graph.col_ind
    offset = graph.nrows
    for k in range(graph.nnz):
        uf.union(int(rows[k]), offset + int(cols[k]))
    roots = np.fromiter(
        (uf.find(v) for v in range(n)), count=n, dtype=np.int64
    )
    _, labels = np.unique(roots, return_inverse=True)
    return ComponentInfo(
        n_components=int(labels.max()) + 1 if n else 0,
        row_labels=labels[:offset].astype(np.int64),
        col_labels=labels[offset:].astype(np.int64),
    )


def component_cycle_counts(graph: BipartiteGraph) -> IndexArray:
    """Independent-cycle count (``edges - vertices + 1``) per component.

    A component is a tree iff its count is 0 and *unicyclic* iff it is 1.
    The paper's Lemma 1 asserts all counts are <= 1 for choice subgraphs.
    """
    info = connected_components(graph)
    vertices = info.sizes()
    edges = np.bincount(
        info.row_labels[graph.row_of_edge()], minlength=info.n_components
    )
    return edges - vertices + 1
