"""Synthetic proxies for the paper's 12 UFL test instances (Table 3).

The paper evaluates scalability and quality on 12 large real matrices from
the University of Florida (SuiteSparse) collection.  Those files are not
available offline, so each is replaced by a generator matched on the
properties the paper identifies as behaviour-determining:

* size ``n`` and average degree (work volume),
* degree *variance* (load imbalance — the paper singles out ``torso1``
  [variance 176056] and ``audikw_1`` [1802] as the worst-scaling instances,
  vs. the next largest variance of 42 for ``kkt_power``),
* mesh/banded locality vs. irregular structure,
* structural-rank deficiency (``europe_osm`` 0.99, ``road_usa`` 0.95; all
  others have a perfect matching).

Default sizes are scaled down ~50–500× from the paper so the full harness
runs on a laptop; every experiment accepts ``n`` overrides, and the
*relative* workloads across the suite are roughly preserved (each default
instance has 190k–330k edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro._typing import SeedLike, rng_from
from repro.errors import ExperimentError
from repro.graph.csr import BipartiteGraph
from repro.graph import generators as gen

__all__ = ["SuiteSpec", "SUITE_NAMES", "suite_spec", "suite_instance"]


@dataclass(frozen=True)
class SuiteSpec:
    """Description of one synthetic suite instance."""

    #: Instance name (the paper's matrix name).
    name: str
    #: Rows/columns in the paper's matrix.
    paper_n: int
    #: Nonzeros in the paper's matrix.
    paper_nnz: int
    #: Average degree reported by the paper (Table 3).
    paper_avg_degree: float
    #: sprank / n reported by the paper.
    paper_sprank_ratio: float
    #: Default scaled-down n for this reproduction.
    default_n: int
    #: One-line structural description.
    description: str
    #: Generator: (n, seed) -> BipartiteGraph.
    build: Callable[[int, SeedLike], BipartiteGraph]
    #: Whether the degree profile is heavily skewed (load imbalance).
    skewed: bool = False


def _near_square(n: int) -> tuple[int, int]:
    gx = int(round(n**0.5))
    gy = max(1, n // gx)
    return gx, gy


def _near_cube(n: int) -> tuple[int, int, int]:
    g = int(round(n ** (1.0 / 3.0)))
    return g, g, max(1, n // (g * g))


def _build_atmosmodl(n: int, seed: SeedLike) -> BipartiteGraph:
    gx, gy, gz = _near_cube(n)
    return gen.grid3d(gx, gy, gz)


def _build_audikw(n: int, seed: SeedLike) -> BipartiteGraph:
    # FEM stiffness pattern: wide band + mild degree skew, deg ~ 82.
    core = gen.banded(n, 30)
    fuzz = gen.power_law_bipartite(n, 21.0, skew=0.5, seed=seed)
    return gen.overlay(core, fuzz)


def _build_cage15(n: int, seed: SeedLike) -> BipartiteGraph:
    # Irregular but total-support-rich: permutation union + ER fill, deg ~19.
    rng = rng_from(seed)
    base = gen.union_of_permutations(n, 4, rng, include_cycle=True)
    fill = gen.sprand(n, 15.0, rng)
    return gen.overlay(base, fill)


def _build_channel(n: int, seed: SeedLike) -> BipartiteGraph:
    gx, gy = _near_square(n)
    mesh = gen.grid_graph(gx, gy, stencil=9)
    return gen.overlay(mesh, gen.banded(gx * gy, 4))


def _build_europe_osm(n: int, seed: SeedLike) -> BipartiteGraph:
    # Road network: degree ~2.1, slightly sprank-deficient.
    gx, gy = _near_square(n)
    mesh = gen.grid_graph(gx, gy, stencil=5)
    road = gen.drop_random_edges(mesh, 0.565, seed)
    return road


def _build_hamrle3(n: int, seed: SeedLike) -> BipartiteGraph:
    rng = rng_from(seed)
    base = gen.union_of_permutations(n, 2, rng, include_cycle=True)
    return gen.overlay(base, gen.sprand(n, 1.8, rng))


def _build_hugebubbles(n: int, seed: SeedLike) -> BipartiteGraph:
    # 2-D triangulation, degree ~3: tridiagonal band.
    return gen.banded(n, 1)


def _build_kkt_power(n: int, seed: SeedLike) -> BipartiteGraph:
    rng = rng_from(seed)
    base = gen.power_law_bipartite(n, 5.2, skew=0.75, seed=rng)
    return gen.overlay(base, gen.union_of_permutations(n, 1, rng,
                                                       include_cycle=True))


def _build_nlpkkt240(n: int, seed: SeedLike) -> BipartiteGraph:
    # Constant-degree wide band, deg ~27 (3-D KKT mesh).
    return gen.banded(n, 13)


def _build_road_usa(n: int, seed: SeedLike) -> BipartiteGraph:
    gx, gy = _near_square(n)
    mesh = gen.grid_graph(gx, gy, stencil=5)
    return gen.drop_random_edges(mesh, 0.60, seed)


def _build_torso1(n: int, seed: SeedLike) -> BipartiteGraph:
    # Extreme degree skew (paper: nonzeros-per-row variance 176056).
    rng = rng_from(seed)
    body = gen.power_law_bipartite(n, 65.0, skew=1.9, seed=rng)
    return gen.overlay(body, gen.banded(n, 4))


def _build_venturi(n: int, seed: SeedLike) -> BipartiteGraph:
    gx, gy = _near_square(n)
    return gen.grid_graph(gx, gy, stencil=5)


_SPECS: dict[str, SuiteSpec] = {
    spec.name: spec
    for spec in [
        SuiteSpec(
            "atmosmodl", 1_489_752, 10_319_760, 6.9, 1.00, 35_000,
            "3-D atmospheric model: 7-point stencil mesh", _build_atmosmodl,
        ),
        SuiteSpec(
            "audikw_1", 943_695, 77_651_847, 82.2, 1.00, 4_000,
            "FEM crankshaft: wide band, mild skew (variance 1802)",
            _build_audikw, skewed=True,
        ),
        SuiteSpec(
            "cage15", 5_154_859, 99_199_551, 19.2, 1.00, 15_000,
            "DNA electrophoresis: irregular, total support", _build_cage15,
        ),
        SuiteSpec(
            "channel", 4_802_000, 85_362_744, 17.8, 1.00, 15_000,
            "channel-500x100x100-b050: dense 3-D mesh", _build_channel,
        ),
        SuiteSpec(
            "europe_osm", 50_912_018, 108_109_320, 2.1, 0.99, 100_000,
            "road network: degree ~2, sprank-deficient", _build_europe_osm,
        ),
        SuiteSpec(
            "Hamrle3", 1_447_360, 5_514_242, 3.8, 1.00, 50_000,
            "circuit simulation: sparse, irregular", _build_hamrle3,
        ),
        SuiteSpec(
            "hugebubbles", 21_198_119, 63_580_358, 3.0, 1.00, 80_000,
            "hugebubbles-00020: 2-D triangulation, degree 3",
            _build_hugebubbles,
        ),
        SuiteSpec(
            "kkt_power", 2_063_494, 12_771_361, 6.2, 1.00, 40_000,
            "optimal power flow KKT: moderate skew (variance 42)",
            _build_kkt_power,
        ),
        SuiteSpec(
            "nlpkkt240", 27_993_600, 760_648_352, 26.7, 1.00, 10_000,
            "nonlinear programming KKT: constant degree 27", _build_nlpkkt240,
        ),
        SuiteSpec(
            "road_usa", 23_947_347, 57_708_624, 2.4, 0.95, 80_000,
            "road network: degree ~2.4, sprank 0.95", _build_road_usa,
        ),
        SuiteSpec(
            "torso1", 116_158, 8_516_500, 73.3, 1.00, 4_000,
            "human torso EM: extreme degree skew (variance 176056)",
            _build_torso1, skewed=True,
        ),
        SuiteSpec(
            "venturiLevel3", 4_026_819, 16_108_474, 4.0, 1.00, 50_000,
            "venturi tube mesh: 5-point stencil", _build_venturi,
        ),
    ]
}

#: Instance names in the paper's (alphabetical) Table-3 order.
SUITE_NAMES: tuple[str, ...] = tuple(_SPECS.keys())


def suite_spec(name: str) -> SuiteSpec:
    """Look up the spec for a named instance."""
    try:
        return _SPECS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown suite instance {name!r}; known: {', '.join(SUITE_NAMES)}"
        ) from None


def suite_instance(
    name: str, n: int | None = None, seed: SeedLike = 0
) -> BipartiteGraph:
    """Build the synthetic proxy for instance *name*.

    Parameters
    ----------
    name:
        One of :data:`SUITE_NAMES`.
    n:
        Override the scaled-down default size.
    seed:
        Generator seed (defaults to 0 so benchmarks are reproducible).
    """
    spec = suite_spec(name)
    return spec.build(n if n is not None else spec.default_n, seed)
