"""Random and structured graph generators.

These cover every instance family the paper's evaluation touches:

* :func:`sprand` / :func:`sprand_rect` — Erdős–Rényi patterns with a target
  average degree, the semantics of Matlab's ``sprand`` used in Section 4.1.3.
* :func:`full_ones` — the all-ones matrix behind Conjecture 1's analysis
  (its 1-out subgraphs are exactly the uniform random 1-out bipartite graphs
  of Walkup / Karoński–Pittel).
* :func:`union_of_permutations` / :func:`fully_indecomposable` — matrices
  with *total support* by construction (every edge lies on the perfect
  matching it was sampled from), the standing assumption of the paper's
  theory and the filter used for its collection experiment (Section 4.1.1).
* :func:`grid_graph`, :func:`banded`, :func:`power_law_bipartite`,
  :func:`random_k_out` — the structural ingredients the synthetic instance
  suite (:mod:`repro.graph.suite`) combines to mimic the UFL matrices.
"""

from __future__ import annotations

import numpy as np

from repro._typing import SeedLike, rng_from
from repro.errors import ShapeError
from repro.graph.build import from_edges
from repro.graph.csr import BipartiteGraph

__all__ = [
    "sprand",
    "sprand_rect",
    "sprand_symmetric",
    "full_ones",
    "random_k_out",
    "random_permutation_graph",
    "union_of_permutations",
    "fully_indecomposable",
    "grid_graph",
    "grid3d",
    "banded",
    "power_law_bipartite",
    "drop_random_edges",
    "overlay",
]


def _sample_positions_without_replacement(
    total: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``count`` distinct integers from ``range(total)``.

    Uses rejection-and-top-up so it stays O(count) in memory even when
    ``total`` is astronomically large (e.g. ``1e5 × 1.2e5`` positions).
    """
    if count > total:
        raise ShapeError(f"cannot sample {count} distinct positions from {total}")
    if count * 3 >= total:
        # Dense regime: a permutation is affordable and exact.
        return rng.permutation(total)[:count]
    picked = np.unique(rng.integers(0, total, size=count))
    while picked.shape[0] < count:
        extra = rng.integers(0, total, size=(count - picked.shape[0]) * 2 + 8)
        picked = np.unique(np.concatenate([picked, extra]))
    if picked.shape[0] > count:
        picked = rng.permutation(picked)[:count]
    return picked


def sprand_rect(
    nrows: int, ncols: int, avg_degree: float, seed: SeedLike = None
) -> BipartiteGraph:
    """Erdős–Rényi pattern with ``round(avg_degree * nrows)`` edges.

    Mirrors the paper's use of Matlab ``sprand`` for the sprank-deficient
    experiments (Table 2 and the rectangular case): positions iid uniform,
    duplicates removed, so the realised nnz is exactly the target.
    """
    if avg_degree < 0:
        raise ShapeError(f"avg_degree must be nonnegative, got {avg_degree}")
    rng = rng_from(seed)
    nnz = int(round(avg_degree * nrows))
    nnz = min(nnz, nrows * ncols)
    pos = _sample_positions_without_replacement(nrows * ncols, nnz, rng)
    rows, cols = np.divmod(pos, ncols)
    return from_edges(nrows, ncols, rows, cols)


def sprand(n: int, avg_degree: float, seed: SeedLike = None) -> BipartiteGraph:
    """Square Erdős–Rényi pattern (see :func:`sprand_rect`)."""
    return sprand_rect(n, n, avg_degree, seed)


def full_ones(n: int, m: int | None = None) -> BipartiteGraph:
    """The complete bipartite pattern (all-ones matrix).

    Memory is O(n·m); intended for the Conjecture-1 experiments where the
    1-out subgraph is drawn directly instead when n is large (see
    :func:`repro.core.oneout.sample_uniform_one_out`).
    """
    m = n if m is None else m
    row_ptr = np.arange(0, (n + 1) * m, m, dtype=np.int64)
    col_ind = np.tile(np.arange(m, dtype=np.int64), n)
    return BipartiteGraph(n, m, row_ptr, col_ind, validate=False)


def sprand_symmetric(
    n: int,
    avg_degree: float,
    seed: SeedLike = None,
    *,
    with_diagonal: bool = False,
) -> BipartiteGraph:
    """Random symmetric pattern (an undirected Erdős–Rényi graph).

    Used by the undirected extension (:mod:`repro.core.undirected`):
    ``a_ij = a_ji``, no self-loops unless *with_diagonal*.
    """
    rng = rng_from(seed)
    m = int(round(avg_degree * n / 2))
    rows = rng.integers(0, n, size=m * 2)
    cols = rng.integers(0, n, size=m * 2)
    keep = rows != cols
    rows, cols = rows[keep][:m], cols[keep][:m]
    all_rows = np.concatenate([rows, cols])
    all_cols = np.concatenate([cols, rows])
    if with_diagonal:
        diag = np.arange(n, dtype=np.int64)
        all_rows = np.concatenate([all_rows, diag])
        all_cols = np.concatenate([all_cols, diag])
    return from_edges(n, n, all_rows, all_cols)


def random_permutation_graph(n: int, seed: SeedLike = None) -> BipartiteGraph:
    """A uniformly random permutation matrix pattern."""
    rng = rng_from(seed)
    perm = rng.permutation(n)
    return from_edges(n, n, np.arange(n, dtype=np.int64), perm)


def union_of_permutations(
    n: int, k: int, seed: SeedLike = None, *, include_cycle: bool = False
) -> BipartiteGraph:
    """Union of ``k`` independent random permutation matrices.

    Every edge belongs to the (perfect-matching) permutation it came from,
    so the result has **total support** by construction.  With
    ``include_cycle=True`` one of the permutations is replaced by the full
    cycle ``i -> i+1 (mod n)``, which makes the bipartite graph connected
    and hence the matrix *fully indecomposable*.
    """
    if k < 1:
        raise ShapeError(f"k must be >= 1, got {k}")
    rng = rng_from(seed)
    rows = np.tile(np.arange(n, dtype=np.int64), k)
    cols_parts = []
    for t in range(k):
        if include_cycle and t == 0:
            cols_parts.append((np.arange(n, dtype=np.int64) + 1) % n)
        else:
            cols_parts.append(rng.permutation(n).astype(np.int64))
    cols = np.concatenate(cols_parts)
    return from_edges(n, n, rows, cols)


def fully_indecomposable(
    n: int,
    avg_degree: float = 4.0,
    seed: SeedLike = None,
) -> BipartiteGraph:
    """A random fully indecomposable (0,1) matrix with ~``avg_degree``·n edges.

    Construction: the full cycle permutation (connectivity) plus
    ``ceil(avg_degree) - 1`` random permutations (total support), so every
    nonzero can be put into a perfect matching — the matrix class of the
    paper's Section 4.1.1 collection experiment.
    """
    k = max(2, int(round(avg_degree)))
    return union_of_permutations(n, k, seed, include_cycle=True)


def random_k_out(
    n: int,
    k: int = 1,
    seed: SeedLike = None,
    *,
    both_sides: bool = True,
) -> BipartiteGraph:
    """Random bipartite k-out graph on ``n + n`` vertices.

    Every row picks ``k`` uniformly random distinct columns; with
    ``both_sides=True`` (default) every column also picks ``k`` random rows
    and the union is returned — for ``k=1`` this is exactly the distribution
    of the subgraph ``TwoSidedMatch`` builds on the all-ones matrix.
    """
    if k < 1 or k > n:
        raise ShapeError(f"k must be in [1, {n}], got {k}")
    rng = rng_from(seed)

    def _picks() -> np.ndarray:
        if k == 1:
            return rng.integers(0, n, size=n)[:, None]
        # Row-wise distinct sampling via argpartition of random keys.
        keys = rng.random((n, n))
        return np.argpartition(keys, k, axis=1)[:, :k]

    r_choice = _picks()
    rows = np.repeat(np.arange(n, dtype=np.int64), k)
    cols = r_choice.ravel().astype(np.int64)
    if both_sides:
        c_choice = _picks()
        rows = np.concatenate([rows, c_choice.ravel().astype(np.int64)])
        cols = np.concatenate([cols, np.repeat(np.arange(n, dtype=np.int64), k)])
    return from_edges(n, n, rows, cols)


def grid_graph(
    gx: int, gy: int, *, stencil: int = 5
) -> BipartiteGraph:
    """Pattern of a ``gx × gy`` structured-mesh operator (5- or 9-point).

    The matrix is ``n × n`` with ``n = gx · gy``; row ``p`` has a diagonal
    entry plus entries for each stencil neighbour of grid cell ``p``.  This
    mimics the paper's mesh-based instances (atmosmodl, venturiLevel3,
    channel): near-constant degree, strong locality, total support via the
    diagonal.
    """
    if stencil not in (5, 9):
        raise ShapeError(f"stencil must be 5 or 9, got {stencil}")
    n = gx * gy
    ids = np.arange(n, dtype=np.int64).reshape(gx, gy)
    rows_list = [ids.ravel()]
    cols_list = [ids.ravel()]
    if stencil == 5:
        offsets = [(-1, 0), (1, 0), (0, -1), (0, 1)]
    else:
        offsets = [
            (dx, dy)
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            if (dx, dy) != (0, 0)
        ]
    for dx, dy in offsets:
        src = ids[
            max(0, -dx) : gx - max(0, dx), max(0, -dy) : gy - max(0, dy)
        ]
        dst = ids[
            max(0, dx) : gx - max(0, -dx), max(0, dy) : gy - max(0, -dy)
        ]
        rows_list.append(src.ravel())
        cols_list.append(dst.ravel())
    return from_edges(
        n, n, np.concatenate(rows_list), np.concatenate(cols_list)
    )


def grid3d(gx: int, gy: int, gz: int) -> BipartiteGraph:
    """Pattern of a 7-point stencil on a ``gx × gy × gz`` mesh.

    Mimics 3-D CFD/atmospheric operators (atmosmodl-like): constant degree
    ~7, strong banded locality, total support via the diagonal.
    """
    n = gx * gy * gz
    ids = np.arange(n, dtype=np.int64).reshape(gx, gy, gz)
    rows_list = [ids.ravel()]
    cols_list = [ids.ravel()]
    for axis in range(3):
        for sign in (-1, 1):
            src_slices = [slice(None)] * 3
            dst_slices = [slice(None)] * 3
            if sign < 0:
                src_slices[axis] = slice(1, None)
                dst_slices[axis] = slice(None, -1)
            else:
                src_slices[axis] = slice(None, -1)
                dst_slices[axis] = slice(1, None)
            rows_list.append(ids[tuple(src_slices)].ravel())
            cols_list.append(ids[tuple(dst_slices)].ravel())
    return from_edges(
        n, n, np.concatenate(rows_list), np.concatenate(cols_list)
    )


def drop_random_edges(
    graph: BipartiteGraph, fraction: float, seed: SeedLike = None
) -> BipartiteGraph:
    """Delete each edge independently with probability *fraction*.

    Used to carve sprank-deficient road-network-like instances out of
    regular meshes.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ShapeError(f"fraction must be in [0, 1], got {fraction}")
    rng = rng_from(seed)
    keep = rng.random(graph.nnz) >= fraction
    return from_edges(
        graph.nrows,
        graph.ncols,
        graph.row_of_edge()[keep],
        graph.col_ind[keep],
    )


def banded(n: int, bandwidth: int) -> BipartiteGraph:
    """Banded pattern: ``a_ij = 1`` iff ``|i - j| <= bandwidth``."""
    offs = np.arange(-bandwidth, bandwidth + 1, dtype=np.int64)
    rows = np.repeat(np.arange(n, dtype=np.int64), offs.shape[0])
    cols = rows + np.tile(offs, n)
    keep = (cols >= 0) & (cols < n)
    return from_edges(n, n, rows[keep], cols[keep])


def power_law_bipartite(
    n: int,
    avg_degree: float,
    *,
    skew: float = 1.0,
    seed: SeedLike = None,
    ensure_diagonal: bool = True,
) -> BipartiteGraph:
    """Bipartite configuration-model pattern with lognormal row degrees.

    ``skew`` is the σ of the lognormal: 0 gives near-constant degrees; 2+
    gives the heavy-tailed, high-variance profile of matrices like
    ``torso1`` where the paper observes load-imbalance-limited speedups.
    ``ensure_diagonal=True`` adds the identity so the matrix has support.
    """
    rng = rng_from(seed)
    raw = rng.lognormal(mean=0.0, sigma=skew, size=n)
    target_nnz = avg_degree * n
    degs = np.maximum(1, np.round(raw * (target_nnz / raw.sum()))).astype(
        np.int64
    )
    degs = np.minimum(degs, n)
    rows = np.repeat(np.arange(n, dtype=np.int64), degs)
    cols = rng.integers(0, n, size=int(degs.sum()))
    if ensure_diagonal:
        rows = np.concatenate([rows, np.arange(n, dtype=np.int64)])
        cols = np.concatenate([cols, np.arange(n, dtype=np.int64)])
    return from_edges(n, n, rows, cols)


def overlay(*graphs: BipartiteGraph) -> BipartiteGraph:
    """Union of the patterns of same-shape graphs."""
    if not graphs:
        raise ShapeError("overlay needs at least one graph")
    shape = graphs[0].shape
    for g in graphs[1:]:
        if g.shape != shape:
            raise ShapeError(f"shape mismatch: {g.shape} vs {shape}")
    rows = np.concatenate([g.row_of_edge() for g in graphs])
    cols = np.concatenate([g.col_ind for g in graphs])
    return from_edges(shape[0], shape[1], rows, cols)
