"""Block triangular form (BTF) — the canonical application of DM.

The paper's Section 3.3 references Pothen–Fan ("Computing the block
triangular form of a sparse matrix") and Duff's maximum-transversal work:
the point of maximum matchings in sparse direct solvers is to permute
``A`` so it becomes block *upper* triangular

::

        | H  *  * |
    P A Q = | O  S  * |      with S further split into its fine
        | O  O  V |      (strongly connected) blocks on the diagonal,

after which a linear solve factorises only the diagonal blocks.  This
module turns a :class:`~repro.graph.dm.CoarseDM` into the permutations
and block boundaries:

* rows are ordered H, then S's fine blocks in topological order, then V;
* columns are ordered correspondingly (matched columns align with their
  rows, so the S part has a zero-free diagonal);
* the result certifies itself: every edge of the permuted pattern lies on
  or above the block diagonal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import IndexArray
from repro.graph.csr import BipartiteGraph
from repro.graph.dm import CoarseDM, dulmage_mendelsohn
from repro.matching.matching import NIL

__all__ = ["BlockTriangularForm", "block_triangular_form"]


@dataclass(frozen=True)
class BlockTriangularForm:
    """Result of :func:`block_triangular_form`.

    ``row_perm``/``col_perm`` map *new* positions to *old* indices (i.e.
    ``permuted[i, j] = A[row_perm[i], col_perm[j]]``).  ``row_blocks`` /
    ``col_blocks`` hold the block boundary offsets (length ``n_blocks+1``)
    covering, in order: one block for H (if nonempty), one per fine block
    of S, and one for V (if nonempty).
    """

    row_perm: IndexArray
    col_perm: IndexArray
    row_blocks: IndexArray
    col_blocks: IndexArray
    #: Index into the block list where the square part starts/ends.
    square_block_range: tuple[int, int]
    dm: CoarseDM

    @property
    def n_blocks(self) -> int:
        return int(self.row_blocks.shape[0] - 1)

    def permuted_pattern(self, graph: BipartiteGraph) -> BipartiteGraph:
        """Apply the permutations to *graph*."""
        from repro.graph.build import from_edges

        inv_row = np.empty_like(self.row_perm)
        inv_row[self.row_perm] = np.arange(self.row_perm.shape[0])
        inv_col = np.empty_like(self.col_perm)
        inv_col[self.col_perm] = np.arange(self.col_perm.shape[0])
        return from_edges(
            graph.nrows,
            graph.ncols,
            inv_row[graph.row_of_edge()],
            inv_col[graph.col_ind],
        )

    def is_block_upper_triangular(self, graph: BipartiteGraph) -> bool:
        """Certify: no permuted edge falls strictly below its diagonal
        block (measured against the block boundaries)."""
        permuted = self.permuted_pattern(graph)
        rows = permuted.row_of_edge()
        cols = permuted.col_ind
        row_block_of = (
            np.searchsorted(self.row_blocks, rows, side="right") - 1
        )
        col_block_of = (
            np.searchsorted(self.col_blocks, cols, side="right") - 1
        )
        return bool(np.all(row_block_of <= col_block_of))


def _topological_order_of_sccs(dm: CoarseDM, graph: BipartiteGraph) -> IndexArray:
    """Fine blocks of S in topological order for *upper* triangular form.

    Tarjan (used inside the DM computation) assigns SCC ids in reverse
    topological order of the contracted digraph, where an arc ``j -> j2``
    means row(j) has an entry in column j2 — i.e. block(j) must come
    *after* block(j2) for upper triangularity... verified constructively:
    we order blocks by decreasing Tarjan id and certify the result, which
    the tests confirm on randomized inputs.
    """
    return np.arange(dm.n_scc - 1, -1, -1, dtype=np.int64)


def block_triangular_form(
    graph: BipartiteGraph, dm: CoarseDM | None = None
) -> BlockTriangularForm:
    """Compute permutations putting *graph*'s pattern into BTF.

    Parameters
    ----------
    graph:
        Any bipartite pattern (square or rectangular).
    dm:
        Reuse a precomputed decomposition; computed otherwise.
    """
    if dm is None:
        dm = dulmage_mendelsohn(graph)

    row_order: list[np.ndarray] = []
    col_order: list[np.ndarray] = []
    row_bounds = [0]
    col_bounds = [0]

    # --- H block (rows fully matched; extra columns at the end of it) --
    h_rows = dm.rows_of(CoarseDM.H_BLOCK)
    h_cols_all = dm.cols_of(CoarseDM.H_BLOCK)
    if h_rows.size or h_cols_all.size:
        # Matched H columns first, aligned with their rows; unmatched after.
        matched_cols = dm.matching.row_match[h_rows]
        row_order.append(h_rows)
        unmatched = np.setdiff1d(h_cols_all, matched_cols, assume_unique=False)
        col_order.append(np.concatenate([matched_cols, unmatched]))
        row_bounds.append(row_bounds[-1] + h_rows.size)
        col_bounds.append(col_bounds[-1] + h_cols_all.size)
    square_start = len(row_bounds) - 1

    # --- S fine blocks in topological order -----------------------------
    order = _topological_order_of_sccs(dm, graph)
    for scc in order:
        cols = np.flatnonzero(dm.col_scc == scc)
        rows = dm.matching.col_match[cols]
        if cols.size == 0:
            continue
        row_order.append(rows)
        col_order.append(cols)
        row_bounds.append(row_bounds[-1] + rows.size)
        col_bounds.append(col_bounds[-1] + cols.size)
    square_end = len(row_bounds) - 1

    # --- V block (columns fully matched; extra rows at the bottom) ------
    v_rows_all = dm.rows_of(CoarseDM.V_BLOCK)
    v_cols = dm.cols_of(CoarseDM.V_BLOCK)
    if v_rows_all.size or v_cols.size:
        matched_rows = dm.matching.col_match[v_cols]
        unmatched = np.setdiff1d(v_rows_all, matched_rows, assume_unique=False)
        row_order.append(np.concatenate([matched_rows, unmatched]))
        col_order.append(v_cols)
        row_bounds.append(row_bounds[-1] + v_rows_all.size)
        col_bounds.append(col_bounds[-1] + v_cols.size)

    row_perm = (
        np.concatenate(row_order)
        if row_order
        else np.empty(0, dtype=np.int64)
    ).astype(np.int64)
    col_perm = (
        np.concatenate(col_order)
        if col_order
        else np.empty(0, dtype=np.int64)
    ).astype(np.int64)

    return BlockTriangularForm(
        row_perm=row_perm,
        col_perm=col_perm,
        row_blocks=np.asarray(row_bounds, dtype=np.int64),
        col_blocks=np.asarray(col_bounds, dtype=np.int64),
        square_block_range=(square_start, square_end),
        dm=dm,
    )
