"""Bipartite graph substrate: storage, construction, generators, analysis.

The paper treats a bipartite graph ``G = (V_R ∪ V_C, E)`` and its ``n × n``
(0,1) adjacency matrix ``A`` interchangeably; so does this package.  The
canonical container is :class:`repro.graph.BipartiteGraph`, a dual CSR/CSC
view of the pattern of ``A``.
"""

from repro.graph.csr import BipartiteGraph
from repro.graph.build import (
    from_dense,
    from_edges,
    from_scipy,
    from_adjacency_lists,
    empty,
    identity,
)
from repro.graph.generators import (
    sprand,
    sprand_rect,
    sprand_symmetric,
    full_ones,
    random_k_out,
    random_permutation_graph,
    union_of_permutations,
    fully_indecomposable,
    grid_graph,
    power_law_bipartite,
    banded,
)
from repro.graph.adversarial import karp_sipser_adversarial
from repro.graph.properties import (
    degree_statistics,
    has_total_support_certificate,
    is_perfect_matchable,
)
from repro.graph.components import connected_components, component_cycle_counts
from repro.graph.dm import dulmage_mendelsohn, CoarseDM
from repro.graph.btf import block_triangular_form, BlockTriangularForm
from repro.graph.viz import spy, choice_diagram
from repro.graph.suite import suite_instance, SUITE_NAMES, SuiteSpec, suite_spec

__all__ = [
    "BipartiteGraph",
    "from_dense",
    "from_edges",
    "from_scipy",
    "from_adjacency_lists",
    "empty",
    "identity",
    "sprand",
    "sprand_rect",
    "sprand_symmetric",
    "full_ones",
    "random_k_out",
    "random_permutation_graph",
    "union_of_permutations",
    "fully_indecomposable",
    "grid_graph",
    "power_law_bipartite",
    "banded",
    "karp_sipser_adversarial",
    "degree_statistics",
    "has_total_support_certificate",
    "is_perfect_matchable",
    "connected_components",
    "component_cycle_counts",
    "dulmage_mendelsohn",
    "CoarseDM",
    "block_triangular_form",
    "BlockTriangularForm",
    "spy",
    "choice_diagram",
    "suite_instance",
    "suite_spec",
    "SUITE_NAMES",
    "SuiteSpec",
]
