"""Dual CSR/CSC storage for the pattern of a (0,1) sparse matrix.

:class:`BipartiteGraph` is the container every algorithm in this library
operates on.  It stores the *pattern* only — the paper's matrices are (0,1)
matrices, and the scaled values ``s_ij = dr[i] · dc[j]`` are always derived
on the fly from the scaling vectors, never materialised per-edge unless a
kernel asks for them.

Both a row-major (CSR) and a column-major (CSC) view are kept so that row
algorithms (``OneSidedMatch`` row choices, row normalisation) and column
algorithms (column choices, column sums in Sinkhorn–Knopp) are both
contiguous sweeps — the cache-friendliness guidance of the HPC notes.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro._typing import FloatArray, IndexArray
from repro.errors import GraphStructureError, ShapeError

__all__ = ["BipartiteGraph"]


def _as_index_array(a: object, name: str) -> IndexArray:
    arr = np.asarray(a)
    if arr.ndim != 1:
        raise ShapeError(f"{name} must be 1-D, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise GraphStructureError(f"{name} must be an integer array, got {arr.dtype}")
    return np.ascontiguousarray(arr, dtype=np.int64)


def _csr_to_csc(
    nrows: int, ncols: int, row_ptr: IndexArray, col_ind: IndexArray
) -> tuple[IndexArray, IndexArray]:
    """Build the CSC mirror of a CSR pattern with a counting sort (O(nnz))."""
    nnz = int(col_ind.shape[0])
    col_counts = np.bincount(col_ind, minlength=ncols)
    col_ptr = np.zeros(ncols + 1, dtype=np.int64)
    np.cumsum(col_counts, out=col_ptr[1:])
    row_of_edge = np.repeat(
        np.arange(nrows, dtype=np.int64), np.diff(row_ptr)
    )
    # Stable sort by column puts edges in CSC order with rows ascending
    # within each column (because CSR order is row-ascending).
    order = np.argsort(col_ind, kind="stable")
    row_ind = row_of_edge[order]
    if row_ind.shape[0] != nnz:  # pragma: no cover - internal consistency
        raise GraphStructureError("CSC construction lost edges")
    return col_ptr, row_ind


class BipartiteGraph:
    """Immutable bipartite graph / (0,1)-matrix pattern with CSR+CSC views.

    Parameters
    ----------
    nrows, ncols:
        Number of row vertices and column vertices.
    row_ptr, col_ind:
        CSR arrays: ``col_ind[row_ptr[i]:row_ptr[i+1]]`` are the column
        neighbours of row ``i``, sorted ascending, without duplicates.
    validate:
        When true (default), check the structural invariants.  Generators
        that construct provably valid CSR can pass ``False`` to skip the
        O(nnz) check.

    Notes
    -----
    Instances are treated as immutable: the underlying numpy arrays are
    marked non-writeable.  All derived quantities (CSC mirror, degrees) are
    computed once in the constructor.
    """

    __slots__ = (
        "nrows",
        "ncols",
        "row_ptr",
        "col_ind",
        "col_ptr",
        "row_ind",
        "_row_of_edge",
    )

    def __init__(
        self,
        nrows: int,
        ncols: int,
        row_ptr: object,
        col_ind: object,
        *,
        validate: bool = True,
    ) -> None:
        nrows = int(nrows)
        ncols = int(ncols)
        if nrows < 0 or ncols < 0:
            raise ShapeError(f"negative dimensions: {nrows} x {ncols}")
        rp = _as_index_array(row_ptr, "row_ptr")
        ci = _as_index_array(col_ind, "col_ind")
        if rp.shape[0] != nrows + 1:
            raise ShapeError(
                f"row_ptr has length {rp.shape[0]}, expected nrows+1={nrows + 1}"
            )
        if validate:
            self._validate_csr(nrows, ncols, rp, ci)
        self.nrows = nrows
        self.ncols = ncols
        self.row_ptr = rp
        self.col_ind = ci
        cp, ri = _csr_to_csc(nrows, ncols, rp, ci)
        self.col_ptr = cp
        self.row_ind = ri
        self._row_of_edge: IndexArray | None = None
        for arr in (self.row_ptr, self.col_ind, self.col_ptr, self.row_ind):
            arr.flags.writeable = False

    @staticmethod
    def _validate_csr(
        nrows: int, ncols: int, row_ptr: IndexArray, col_ind: IndexArray
    ) -> None:
        if row_ptr[0] != 0:
            raise GraphStructureError("row_ptr[0] must be 0")
        if row_ptr[-1] != col_ind.shape[0]:
            raise GraphStructureError(
                f"row_ptr[-1]={row_ptr[-1]} does not match nnz={col_ind.shape[0]}"
            )
        if np.any(np.diff(row_ptr) < 0):
            raise GraphStructureError("row_ptr must be nondecreasing")
        if col_ind.size:
            if col_ind.min() < 0 or col_ind.max() >= ncols:
                raise GraphStructureError(
                    f"column indices out of range [0, {ncols})"
                )
            # Sorted + strictly increasing within each row <=> sorted overall
            # except at row boundaries, and no duplicates within a row.
            inner = np.ones(col_ind.shape[0], dtype=bool)
            boundaries = row_ptr[1:-1]
            # Boundaries at nnz (trailing empty rows) are beyond the diffs.
            inner[boundaries[boundaries < col_ind.shape[0]]] = False
            diffs_ok = np.diff(col_ind) > 0
            if not np.all(diffs_ok | ~inner[1:]):
                raise GraphStructureError(
                    "column indices must be strictly increasing within each row"
                )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """Matrix shape ``(nrows, ncols)``."""
        return (self.nrows, self.ncols)

    @property
    def nnz(self) -> int:
        """Number of edges (nonzeros)."""
        return int(self.col_ind.shape[0])

    @property
    def is_square(self) -> bool:
        return self.nrows == self.ncols

    def row_degrees(self) -> IndexArray:
        """Degree of every row vertex (length ``nrows``)."""
        return np.diff(self.row_ptr)

    def col_degrees(self) -> IndexArray:
        """Degree of every column vertex (length ``ncols``)."""
        return np.diff(self.col_ptr)

    def row_of_edge(self) -> IndexArray:
        """Row index of each CSR-ordered edge (length ``nnz``); cached."""
        if self._row_of_edge is None:
            roe = np.repeat(
                np.arange(self.nrows, dtype=np.int64), np.diff(self.row_ptr)
            )
            roe.flags.writeable = False
            self._row_of_edge = roe
        return self._row_of_edge

    # ------------------------------------------------------------------
    # Neighbour access
    # ------------------------------------------------------------------
    def row_neighbors(self, i: int) -> IndexArray:
        """Columns adjacent to row ``i`` (a read-only view, sorted)."""
        return self.col_ind[self.row_ptr[i] : self.row_ptr[i + 1]]

    def col_neighbors(self, j: int) -> IndexArray:
        """Rows adjacent to column ``j`` (a read-only view, sorted)."""
        return self.row_ind[self.col_ptr[j] : self.col_ptr[j + 1]]

    def has_edge(self, i: int, j: int) -> bool:
        """True iff ``a_ij = 1``.  O(log deg(i))."""
        if not (0 <= i < self.nrows and 0 <= j < self.ncols):
            return False
        nbrs = self.row_neighbors(i)
        pos = int(np.searchsorted(nbrs, j))
        return pos < nbrs.shape[0] and int(nbrs[pos]) == j

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Yield ``(row, col)`` pairs in CSR order.  Intended for tests and
        small graphs; hot paths use the arrays directly."""
        roe = self.row_of_edge()
        for k in range(self.nnz):
            yield int(roe[k]), int(self.col_ind[k])

    # ------------------------------------------------------------------
    # Conversions / derived graphs
    # ------------------------------------------------------------------
    def transpose(self) -> "BipartiteGraph":
        """The transposed pattern (rows and columns swapped).

        O(1) array reuse: our CSC arrays are exactly the transpose's CSR.
        """
        t = BipartiteGraph.__new__(BipartiteGraph)
        t.nrows = self.ncols
        t.ncols = self.nrows
        t.row_ptr = self.col_ptr
        t.col_ind = self.row_ind
        t.col_ptr = self.row_ptr
        t.row_ind = self.col_ind
        t._row_of_edge = None
        return t

    def to_dense(self) -> FloatArray:
        """Dense (0,1) ndarray of the pattern.  For tests/small graphs."""
        dense = np.zeros((self.nrows, self.ncols), dtype=np.float64)
        dense[self.row_of_edge(), self.col_ind] = 1.0
        return dense

    def to_scipy(self):
        """Return a ``scipy.sparse.csr_matrix`` with unit values."""
        from scipy.sparse import csr_matrix

        data = np.ones(self.nnz, dtype=np.float64)
        return csr_matrix(
            (data, self.col_ind.copy(), self.row_ptr.copy()),
            shape=(self.nrows, self.ncols),
        )

    def scaled_values(self, dr: FloatArray, dc: FloatArray) -> FloatArray:
        """Per-edge scaled entries ``s_ij = dr[i] * dc[j]`` in CSR order."""
        dr = np.asarray(dr, dtype=np.float64)
        dc = np.asarray(dc, dtype=np.float64)
        if dr.shape != (self.nrows,) or dc.shape != (self.ncols,):
            raise ShapeError(
                f"scaling vectors must have shapes ({self.nrows},) and "
                f"({self.ncols},), got {dr.shape} and {dc.shape}"
            )
        return dr[self.row_of_edge()] * dc[self.col_ind]

    def subgraph_rows(self, rows: IndexArray) -> "BipartiteGraph":
        """Row-induced subgraph keeping all columns.  Row order follows
        *rows*; column ids are unchanged."""
        rows = _as_index_array(rows, "rows")
        if rows.size and (rows.min() < 0 or rows.max() >= self.nrows):
            raise ShapeError("row indices out of range")
        degs = np.diff(self.row_ptr)[rows]
        new_ptr = np.zeros(rows.shape[0] + 1, dtype=np.int64)
        np.cumsum(degs, out=new_ptr[1:])
        # Vectorised range concatenation: for each selected row, the flat
        # positions row_ptr[i] .. row_ptr[i]+deg-1, with no Python loop.
        total = int(new_ptr[-1])
        flat = np.arange(total, dtype=np.int64) + np.repeat(
            self.row_ptr[rows] - new_ptr[:-1], degs
        )
        new_ind = self.col_ind[flat]
        return BipartiteGraph(
            rows.shape[0], self.ncols, new_ptr, new_ind, validate=False
        )

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BipartiteGraph(nrows={self.nrows}, ncols={self.ncols}, "
            f"nnz={self.nnz})"
        )

    def __eq__(self, other: object) -> bool:
        """Structural equality of the pattern."""
        if not isinstance(other, BipartiteGraph):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.row_ptr, other.row_ptr)
            and np.array_equal(self.col_ind, other.col_ind)
        )

    def __hash__(self) -> int:
        return hash(
            (self.nrows, self.ncols, self.nnz, self.col_ind[:16].tobytes())
        )
