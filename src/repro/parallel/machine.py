"""A calibrated cost model of the paper's shared-memory machine.

The paper's scalability experiments (Figures 3 and 4) ran on a 2-socket,
16-core Sandy Bridge with OpenMP ``schedule(dynamic,512)`` (``guided`` for
``KarpSipserMT``).  This host has 2 cores, so those curves are reproduced
through a machine *model* instead of wall-clock timing (see DESIGN.md,
"Substitutions"):

* the **work profile** of a kernel is measured exactly — per loop item
  (row/vertex), how many operations Algorithms 1–4 perform on the given
  instance;
* the model schedules the items into chunks exactly like OpenMP would and
  computes the p-thread *makespan* via list scheduling (dynamic
  self-scheduling semantics: a free worker grabs the next chunk);
* two hardware effects bound the achievable speedup, both taken from the
  well-known behaviour of memory-bound sparse kernels on that class of
  machine: a **memory-bandwidth roofline** (sparse SpMV-like sweeps stop
  scaling once the sockets' bandwidth is saturated — around 10–12 threads'
  worth of traffic on Sandy Bridge) and a small **per-chunk scheduling
  overhead** (the atomic chunk counter).

The model's claim is *shape*, not absolute nanoseconds: near-linear scaling
to 8 threads, ~10–12.6× at 16 threads, and visibly worse speedups on
instances with highly skewed per-row work (``torso1``, ``audikw_1``) —
which is what the paper reports.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field

import numpy as np

from repro._typing import FloatArray
from repro.errors import ScheduleError
from repro.parallel.partition import chunk_ranges, guided_chunks, static_partition

__all__ = ["ScheduleKind", "ScheduleSpec", "MachineModel", "ParallelTimeBreakdown"]


class ScheduleKind(str, enum.Enum):
    """OpenMP loop schedule kinds supported by the model."""

    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"


@dataclass(frozen=True)
class ScheduleSpec:
    """A schedule kind plus its chunk parameter."""

    kind: ScheduleKind = ScheduleKind.DYNAMIC
    chunk: int = 512

    @classmethod
    def dynamic(cls, chunk: int = 512) -> "ScheduleSpec":
        return cls(ScheduleKind.DYNAMIC, chunk)

    @classmethod
    def guided(cls, min_chunk: int = 64) -> "ScheduleSpec":
        return cls(ScheduleKind.GUIDED, min_chunk)

    @classmethod
    def static(cls) -> "ScheduleSpec":
        return cls(ScheduleKind.STATIC, 0)


@dataclass(frozen=True)
class ParallelTimeBreakdown:
    """Components of a modelled parallel execution time (work units)."""

    makespan: float
    bandwidth_factor: float
    serial_work: float
    barrier_cost: float
    n_chunks: int

    @property
    def total(self) -> float:
        return (
            self.makespan * self.bandwidth_factor
            + self.serial_work
            + self.barrier_cost
        )


@dataclass(frozen=True)
class MachineModel:
    """Parameters of the modelled shared-memory machine.

    Attributes
    ----------
    bandwidth_threads:
        Number of threads' worth of traffic that saturates memory
        bandwidth for streaming sparse kernels.  Threads beyond this run
        proportionally slower (roofline).  11.0 reproduces the paper's
        ~10–11× ScaleSK/OneSidedMatch speedups at 16 threads.
    chunk_overhead:
        Work units charged per chunk grab (the ``dynamic`` schedule's
        atomic counter + loop restart).
    barrier_unit:
        Work units per barrier, multiplied by ``log2(p)+1``.
    compute_bound_fraction:
        Fraction of kernel work that is compute- (not bandwidth-) bound
        and hence keeps scaling past the roofline; sparse pattern sweeps
        are mostly memory traffic, so the default is low.
    """

    bandwidth_threads: float = 11.0
    chunk_overhead: float = 8.0
    barrier_unit: float = 32.0
    compute_bound_fraction: float = 0.15

    # ------------------------------------------------------------------
    def _chunks(
        self, item_work: FloatArray, p: int, schedule: ScheduleSpec
    ) -> list[float]:
        n = int(item_work.shape[0])
        prefix = np.concatenate([[0.0], np.cumsum(item_work)])

        def range_work(lo: int, hi: int) -> float:
            return float(prefix[hi] - prefix[lo])

        if schedule.kind is ScheduleKind.DYNAMIC:
            ranges = chunk_ranges(n, schedule.chunk)
        elif schedule.kind is ScheduleKind.GUIDED:
            ranges = guided_chunks(n, p, max(1, schedule.chunk))
        elif schedule.kind is ScheduleKind.STATIC:
            ranges = static_partition(n, p)
        else:  # pragma: no cover - enum is exhaustive
            raise ScheduleError(f"unknown schedule {schedule.kind}")
        return [range_work(lo, hi) + self.chunk_overhead for lo, hi in ranges]

    @staticmethod
    def _list_schedule_makespan(chunk_works: list[float], p: int) -> float:
        """Dynamic self-scheduling: a free worker takes the next chunk."""
        if not chunk_works:
            return 0.0
        heap = [0.0] * min(p, len(chunk_works))
        heapq.heapify(heap)
        for w in chunk_works:
            t = heapq.heappop(heap)
            heapq.heappush(heap, t + w)
        return max(heap)

    def bandwidth_factor(self, p: int) -> float:
        """Slowdown multiplier once p threads exceed the bandwidth roof."""
        if p <= self.bandwidth_threads:
            return 1.0
        memory_part = 1.0 - self.compute_bound_fraction
        # Memory-bound portion runs at bandwidth_threads/p of full speed.
        return memory_part * (p / self.bandwidth_threads) + (
            self.compute_bound_fraction
        )

    # ------------------------------------------------------------------
    @staticmethod
    def split_heavy_items(
        item_work: FloatArray, threshold: float
    ) -> FloatArray:
        """Split items heavier than *threshold* into equal sub-items.

        Models the paper's Section 2.2 remark: "in case of skewness in
        degree distributions, one [can] assign multiple threads to a
        single row".  Splitting a heavy row's gather across threads
        removes it from the critical path at the cost of a tiny merge
        (charged as one extra unit per extra part).
        """
        item_work = np.asarray(item_work, dtype=np.float64)
        if threshold <= 0:
            raise ScheduleError(f"threshold must be positive, got {threshold}")
        heavy = item_work > threshold
        if not heavy.any():
            return item_work
        parts: list[np.ndarray] = [item_work[~heavy]]
        for w in item_work[heavy]:
            k = int(np.ceil(w / threshold))
            parts.append(np.full(k, w / k + 1.0))
        return np.concatenate(parts)

    def parallel_time(
        self,
        item_work: FloatArray,
        p: int,
        *,
        schedule: ScheduleSpec | None = None,
        serial_work: float = 0.0,
        barriers: int = 0,
    ) -> ParallelTimeBreakdown:
        """Modelled execution time of one parallel loop nest.

        Parameters
        ----------
        item_work:
            Work units per loop item (e.g. per-row nonzero count plus a
            constant); the *measured* profile of the actual instance.
        p:
            Thread count (>= 1).
        schedule:
            Loop schedule; defaults to the paper's ``dynamic,512``.
        serial_work:
            Work executed outside the parallel loop (Amdahl term).
        barriers:
            Number of barrier synchronisations (per Sinkhorn–Knopp
            iteration there are two: after the column and row sweeps).
        """
        if p < 1:
            raise ScheduleError(f"thread count must be >= 1, got {p}")
        item_work = np.asarray(item_work, dtype=np.float64)
        schedule = schedule or ScheduleSpec.dynamic()
        chunks = self._chunks(item_work, p, schedule)
        makespan = self._list_schedule_makespan(chunks, p)
        barrier_cost = barriers * self.barrier_unit * (np.log2(p) + 1.0)
        return ParallelTimeBreakdown(
            makespan=makespan,
            bandwidth_factor=self.bandwidth_factor(p),
            serial_work=float(serial_work),
            barrier_cost=float(barrier_cost),
            n_chunks=len(chunks),
        )

    def speedup(
        self,
        item_work: FloatArray,
        p: int,
        *,
        schedule: ScheduleSpec | None = None,
        serial_work: float = 0.0,
        barriers: int = 0,
    ) -> float:
        """Modelled speedup ``T_1 / T_p`` of the loop nest.

        ``T_1`` is the same model evaluated at one thread (as in the paper,
        which measures speedup against the single-thread run of the
        parallel code).
        """
        t1 = self.parallel_time(
            item_work, 1, schedule=schedule, serial_work=serial_work,
            barriers=barriers,
        ).total
        tp = self.parallel_time(
            item_work, p, schedule=schedule, serial_work=serial_work,
            barriers=barriers,
        ).total
        return t1 / tp if tp > 0 else 1.0
