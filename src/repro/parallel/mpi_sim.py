"""An in-process message-passing simulation (MPI-flavoured).

The paper's Section 2.2 cites a *distributed-memory* parallelisation of
matrix scaling (Amestoy, Duff, Ruiz, Uçar — VECPAR 2008).  To reproduce
that substrate without an MPI installation, this module provides a tiny
communicator with mpi4py's core collective semantics — ``allreduce``,
``allgather``, ``bcast``, ``barrier`` — executed by *rank programs*
running as coroutines inside one process.

Semantics match the MPI contract:

* every rank must call the same collectives in the same order (each
  rank's k-th collective is matched with every other rank's k-th;
  mismatched kinds raise :class:`~repro.errors.BackendError`);
* a collective completes only when all ranks have entered it;
* data is deep-copied across the "network", so ranks cannot share
  mutable state by accident — the bug MPI surfaces on real hardware and
  shared-memory threading silently hides.

Usage::

    def program(comm: SimComm, rank_data):
        total = yield from comm.allreduce(rank_data.sum())
        ...
        return result

    results = run_ranks(program, [data0, data1, ...])  # one per rank
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import BackendError

__all__ = ["SimComm", "run_ranks"]


class _Fabric:
    """Shared rendezvous state, indexed by collective sequence number."""

    def __init__(self, size: int) -> None:
        self.size = size
        #: seq -> {"kind", "contributions": {rank: payload}, "result",
        #:         "done": bool, "reads": int}
        self.slots: dict[int, dict[str, Any]] = {}

    def slot(self, seq: int, kind: str) -> dict[str, Any]:
        entry = self.slots.setdefault(
            seq,
            {"kind": kind, "contributions": {}, "result": None,
             "done": False, "reads": 0},
        )
        if entry["kind"] != kind:
            raise BackendError(
                f"collective mismatch at sequence {seq}: {kind!r} vs "
                f"{entry['kind']!r}"
            )
        return entry


class SimComm:
    """The communicator handle passed to every rank program."""

    def __init__(self, rank: int, size: int, fabric: _Fabric) -> None:
        self._rank = rank
        self._size = size
        self._fabric = fabric
        self._seq = 0

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    def _enter(self, kind: str, payload: Any):
        seq = self._seq
        self._seq += 1
        entry = self._fabric.slot(seq, kind)
        if self._rank in entry["contributions"]:  # pragma: no cover
            raise BackendError(
                f"rank {self._rank} double-entered collective {seq}"
            )
        entry["contributions"][self._rank] = copy.deepcopy(payload)
        while len(entry["contributions"]) < self._size:
            yield None
        if not entry["done"]:
            entry["result"] = self._combine(kind, entry["contributions"])
            entry["done"] = True
        result = copy.deepcopy(entry["result"])
        entry["reads"] += 1
        if entry["reads"] == self._size:
            del self._fabric.slots[seq]  # free the slot
        return result

    @staticmethod
    def _combine(kind: str, contributions: dict[int, Any]) -> Any:
        ordered = [contributions[r] for r in sorted(contributions)]
        if kind == "allreduce-sum":
            total = ordered[0]
            for item in ordered[1:]:
                total = total + item
            return total
        if kind == "allreduce-max":
            out = ordered[0]
            for item in ordered[1:]:
                out = np.maximum(out, item)
            return out
        if kind == "allgather":
            return ordered
        if kind == "bcast":
            roots = [v for v in ordered if v is not None]
            if len(roots) != 1:
                raise BackendError(
                    "bcast needs exactly one non-None contribution (the root)"
                )
            return roots[0]
        if kind == "barrier":
            return None
        raise BackendError(f"unknown collective {kind!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Public collectives; call as  ``x = yield from comm.<collective>(...)``
    # ------------------------------------------------------------------
    def allreduce(self, value: Any, op: str = "sum"):
        """Sum (or elementwise max) across ranks, delivered to every rank."""
        if op not in ("sum", "max"):
            raise BackendError(f"unsupported allreduce op {op!r}")
        return (yield from self._enter(f"allreduce-{op}", value))

    def allgather(self, value: Any):
        """List of every rank's *value*, ordered by rank."""
        return (yield from self._enter("allgather", value))

    def bcast(self, value: Any, root: int = 0):
        """Root's *value* delivered to every rank."""
        payload = value if self._rank == root else None
        return (yield from self._enter("bcast", payload))

    def barrier(self):
        """Synchronise all ranks."""
        return (yield from self._enter("barrier", None))


def run_ranks(
    program: Callable[[SimComm, Any], Any],
    rank_args: Sequence[Any],
    *,
    max_steps: int = 10_000_000,
) -> list[Any]:
    """Run *program* on ``len(rank_args)`` simulated ranks to completion.

    ``program(comm, arg)`` must be a generator function (it contains
    ``yield from comm.<collective>(...)`` calls); its return value is
    collected per rank and the list is returned in rank order.
    """
    size = len(rank_args)
    if size < 1:
        raise BackendError("need at least one rank")
    fabric = _Fabric(size)
    comms = [SimComm(r, size, fabric) for r in range(size)]
    gens = [program(comms[r], rank_args[r]) for r in range(size)]
    results: list[Any] = [None] * size
    live = set(range(size))
    steps = 0
    while live:
        progressed = False
        for r in sorted(live):
            steps += 1
            if steps > max_steps:
                raise BackendError("simulated ranks exceeded max_steps")
            try:
                next(gens[r])
            except StopIteration as stop:
                results[r] = stop.value
                live.discard(r)
            progressed = True
        if not progressed:  # pragma: no cover - defensive
            raise BackendError("deadlock: no rank can progress")
    return results
