"""Native (JIT-compiled) implementations of the registered kernels.

Every kernel in :data:`repro.parallel.kernels.KERNELS` has a loop-level
twin here, written so that a ``numba.njit(cache=True, nogil=True)``
compilation of it is **bitwise identical** to the numpy implementation
on every chunk — same summation tree, same tie-breaks, same sentinel
handling.  The native tier slots in *behind* the registry as a per-kernel
implementation choice: the chunk grid, the task protocol, and all five
backends (serial / threads / processes / shm / resilient) are untouched,
so every equivalence guarantee of the registered-kernel layer carries
over verbatim.

Bitwise contract
----------------

numpy's reductions are not naive left-to-right sums; the loops below
mirror the exact evaluation orders so the compiled results match to the
last bit:

* ``np.add.reduceat`` (the segment sums behind the SK sweeps) computes
  ``seg[0] + pairwise_sum(seg[1:])`` per segment, where ``pairwise_sum``
  is numpy's 8-accumulator blocked pairwise tree with a 128-element
  block size (:func:`_pairwise` / :func:`_gather_pairwise` replicate it,
  including the unrolled remainder handling).  A one-element segment is
  returned as ``seg[0]`` with **no** addition performed.
* ``np.cumsum`` (the choice kernels' prefix sums) is a plain sequential
  accumulation.
* ``np.searchsorted(..., side="left")`` on a sorted array is an exact
  binary search — replicated literally, then clipped to the segment like
  the numpy kernel.  (Choice weights are non-negative by construction,
  so the chunk-local prefix array is sorted.)
* ``np.max`` propagates NaN; ``np.minimum.reduceat`` tie-breaks to the
  first occurrence.  Both behaviours are reproduced with explicit
  comparisons (``x > m or x != x``; strict ``<`` for the running min).

Because the mirrored trees could *in principle* diverge on an exotic
SIMD build, activation is gated: compiling a kernel runs a differential
self-check against the numpy implementation on an adversarial probe
input (denormals, huge magnitudes, empty / single-element / >128-edge
segments, price ties).  Any mismatch — like any compile failure, or
numba simply being absent — demotes that kernel to the numpy
implementation with a single warning.  Selection never errors.

Selection
---------

``REPRO_KERNEL_IMPL`` (``native`` / ``numpy`` / ``auto``, default
``auto``) picks the tier at import; :func:`set_kernel_impl` and the
:func:`kernel_impl` context manager change it at runtime.  ``auto``
means *native when numba is importable, numpy otherwise*.  Workers of a
:class:`~repro.parallel.shm.SharedMemoryBackend` inherit the selection
(and any warm-compiled dispatchers) when the pool forks; changing the
selection afterwards only affects the parent — which is unobservable in
results, because the two tiers are bitwise identical.

Compiled machine code is cached on disk under
:func:`native_cache_dir` (``$REPRO_NUMBA_CACHE``, else
``$XDG_CACHE_HOME/repro/numba``), so later processes skip the JIT cost;
:func:`warm_compile` compiles every kernel eagerly — the shm pool calls
it in the parent before forking so workers never compile.
"""

from __future__ import annotations

import contextlib
import importlib.util
import os
import threading
import time
import warnings
import zlib
from typing import Any, Callable, Iterator, Mapping

import numpy as np

from repro import telemetry as _tm

__all__ = [
    "AUCTION_DROP",
    "NIL",
    "active_fn",
    "force_native_impls",
    "get_kernel_impl",
    "kernel_impl",
    "kernel_impls",
    "native_available",
    "native_cache_dir",
    "set_kernel_impl",
    "warm_compile",
]

#: Duplicated sentinels (the loops need them as compile-time constants
#: and this module must stay importable before the registry).  Their
#: equality with the canonical definitions is asserted where they live
#: (``kernels.py`` / ``matching.py``) and in the native test suite.
NIL: int = -1
AUCTION_DROP: int = -2

_VALID_MODES = ("auto", "native", "numpy")

#: numpy's pairwise-summation block size (PW_BLOCKSIZE in
#: ``numpy/_core/src/umath/loops_utils.h.src``).
_PW_BLOCK = 128


# ----------------------------------------------------------------------
# numba detection + on-disk cache directory
# ----------------------------------------------------------------------
def native_cache_dir() -> str:
    """Directory numba caches compiled kernels in (created on demand).

    ``$REPRO_NUMBA_CACHE`` overrides; the default follows XDG:
    ``$XDG_CACHE_HOME/repro/numba`` (``~/.cache/repro/numba``).
    """
    explicit = os.environ.get("REPRO_NUMBA_CACHE")
    if explicit:
        return explicit
    xdg = os.environ.get("XDG_CACHE_HOME")
    if not xdg:
        xdg = os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(xdg, "repro", "numba")


def native_available() -> bool:
    """True when numba is importable (without importing it yet)."""
    global _NUMBA_PRESENT
    if _NUMBA_PRESENT is None:
        try:
            _NUMBA_PRESENT = importlib.util.find_spec("numba") is not None
        except (ImportError, ValueError):  # pragma: no cover - exotic loaders
            _NUMBA_PRESENT = False
    return _NUMBA_PRESENT


_NUMBA_PRESENT: bool | None = None
_NUMBA_VERSION: str | None = None
_JITTED = False


def _ensure_jitted() -> None:
    """Import numba (cache dir exported first) and jit every loop, once."""
    global _JITTED, _NUMBA_VERSION
    if _JITTED:
        return
    cache_dir = native_cache_dir()
    try:
        os.makedirs(cache_dir, exist_ok=True)
        os.environ.setdefault("NUMBA_CACHE_DIR", cache_dir)
    except OSError:  # pragma: no cover - unwritable home; numba picks its own
        pass
    import numba  # deferred: ~1s import, only paid when native is active

    _NUMBA_VERSION = getattr(numba, "__version__", "unknown")
    jit = numba.njit(cache=True, nogil=True)
    # Rebind the module globals so kernel loops (and the self-recursive
    # pairwise trees) resolve to dispatchers at compile time.  Helpers
    # first: they must be dispatchers before any kernel loop compiles.
    g = globals()
    for name in _HELPER_LOOPS + _KERNEL_LOOPS:
        g[name] = jit(g[name])
    _JITTED = True


# ----------------------------------------------------------------------
# Loop implementations (plain Python until :func:`_ensure_jitted` runs)
# ----------------------------------------------------------------------
def _pairwise(a, lo, n):
    """numpy's ``pairwise_sum_DOUBLE`` over ``a[lo:lo+n]``, to the bit."""
    if n < 8:
        s = 0.0
        for i in range(n):
            s += a[lo + i]
        return s
    if n <= _PW_BLOCK:
        r0 = a[lo]
        r1 = a[lo + 1]
        r2 = a[lo + 2]
        r3 = a[lo + 3]
        r4 = a[lo + 4]
        r5 = a[lo + 5]
        r6 = a[lo + 6]
        r7 = a[lo + 7]
        i = 8
        lim = n - (n % 8)
        while i < lim:
            r0 += a[lo + i]
            r1 += a[lo + i + 1]
            r2 += a[lo + i + 2]
            r3 += a[lo + i + 3]
            r4 += a[lo + i + 4]
            r5 += a[lo + i + 5]
            r6 += a[lo + i + 6]
            r7 += a[lo + i + 7]
            i += 8
        s = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        while i < n:
            s += a[lo + i]
            i += 1
        return s
    n2 = n // 2
    n2 -= n2 % 8
    return _pairwise(a, lo, n2) + _pairwise(a, lo + n2, n - n2)


def _gather_pairwise(opp, ind, lo, n):
    """:func:`_pairwise` over the gather ``opp[ind[lo:lo+n]]``."""
    if n < 8:
        s = 0.0
        for i in range(n):
            s += opp[ind[lo + i]]
        return s
    if n <= _PW_BLOCK:
        r0 = opp[ind[lo]]
        r1 = opp[ind[lo + 1]]
        r2 = opp[ind[lo + 2]]
        r3 = opp[ind[lo + 3]]
        r4 = opp[ind[lo + 4]]
        r5 = opp[ind[lo + 5]]
        r6 = opp[ind[lo + 6]]
        r7 = opp[ind[lo + 7]]
        i = 8
        lim = n - (n % 8)
        while i < lim:
            r0 += opp[ind[lo + i]]
            r1 += opp[ind[lo + i + 1]]
            r2 += opp[ind[lo + i + 2]]
            r3 += opp[ind[lo + i + 3]]
            r4 += opp[ind[lo + i + 4]]
            r5 += opp[ind[lo + i + 5]]
            r6 += opp[ind[lo + i + 6]]
            r7 += opp[ind[lo + i + 7]]
            i += 8
        s = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        while i < n:
            s += opp[ind[lo + i]]
            i += 1
        return s
    n2 = n // 2
    n2 -= n2 % 8
    return _gather_pairwise(opp, ind, lo, n2) + _gather_pairwise(
        opp, ind, lo + n2, n - n2
    )


def _gather_seg_sum(opp, ind, lo, n):
    """``np.add.reduceat`` semantics for one gathered segment.

    reduceat seeds the reduction with the first element and pairwise-sums
    the rest; a one-element segment is returned *without* any addition
    (so ``-0.0`` survives), and an empty one is 0.0.
    """
    if n <= 0:
        return 0.0
    if n == 1:
        return opp[ind[lo]]
    return opp[ind[lo]] + _gather_pairwise(opp, ind, lo + 1, n - 1)


def _loop_sk_sweep(lo, hi, ptr, ind, opp, out):
    for i in range(lo, hi):
        a = ptr[i]
        b = ptr[i + 1]
        s = _gather_seg_sum(opp, ind, a, b - a)
        if s > 0.0:
            out[i] = 1.0 / s
        else:
            out[i] = 1.0


def _loop_sk_sweep_err(lo, hi, ptr, ind, opp, mine, out):
    err = 0.0
    seen = False
    for i in range(lo, hi):
        a = ptr[i]
        b = ptr[i + 1]
        s = _gather_seg_sum(opp, ind, a, b - a)
        if b > a:
            x = abs(s * mine[i] - 1.0)
            if not seen:
                err = x
                seen = True
            elif x > err or x != x:  # np.max propagates NaN
                err = x
        if s > 0.0:
            out[i] = 1.0 / s
        else:
            out[i] = 1.0
    return err


def _pick_segments(lo, hi, ptr, ind, cum, draws, out):
    """Shared tail of the choice kernels over a chunk-local prefix *cum*.

    *cum* is the sequential prefix sum of the chunk's edge weights
    (``np.cumsum`` order); the binary search replicates
    ``np.searchsorted(cum, target, side="left")`` over the whole chunk,
    then clips into the segment exactly like the numpy kernel.
    """
    s = ptr[lo]
    m = ptr[hi] - s
    for i in range(lo, hi):
        start = ptr[i] - s
        end = ptr[i + 1] - s
        if start == end:
            out[i] = NIL
            continue
        if start > 0:
            base = cum[start - 1]
        else:
            base = 0.0
        total = cum[end - 1] - base
        if total <= 0.0:
            out[i] = NIL
            continue
        t = base + draws[i] * total
        pos = 0
        hi_b = m
        while pos < hi_b:
            mid = (pos + hi_b) >> 1
            if cum[mid] < t:
                pos = mid + 1
            else:
                hi_b = mid
        if pos < start:
            pos = start
        if pos > end - 1:
            pos = end - 1
        out[i] = ind[s + pos]


def _loop_choice_scaled(lo, hi, ptr, ind, opp, draws, out):
    s = ptr[lo]
    m = ptr[hi] - s
    cum = np.empty(m, dtype=np.float64)
    run = 0.0
    for k in range(m):
        run += opp[ind[s + k]]
        cum[k] = run
    _pick_segments(lo, hi, ptr, ind, cum, draws, out)


def _loop_choice_flat(lo, hi, ptr, ind, weights, draws, out):
    s = ptr[lo]
    m = ptr[hi] - s
    cum = np.empty(m, dtype=np.float64)
    run = 0.0
    for k in range(m):
        run += weights[s + k]
        cum[k] = run
    _pick_segments(lo, hi, ptr, ind, cum, draws, out)


def _loop_ks_phase1_scan(lo, hi, alive, in_count, match, choice, cand):
    n = match.shape[0]
    for i in range(lo, hi):
        ok = alive[i] and in_count[i] == 0 and match[i] == NIL
        if ok:
            t = choice[i]
            if t < 0:  # numpy fancy indexing wraps NIL to match[-1]
                t += n
            ok = match[t] == NIL
        cand[i] = ok


def _loop_ks_phase2_scan(lo, hi, nrows, match, choice, ok_out):
    for j in range(lo, hi):
        u = nrows + j
        t = choice[u]
        m = t != NIL and match[u] == NIL
        if m:
            m = match[t] == NIL
        ok_out[j] = m


def _loop_auction_bid(lo, hi, ptr, ind, prices, eps, dead, bid_col, bid_val):
    for i in range(lo, hi):
        a = ptr[i]
        b = ptr[i + 1]
        best = np.inf
        second = np.inf
        bestpos = -1
        for k in range(a, b):
            p = prices[ind[k]]
            if p >= dead:
                p = np.inf
            if p < best:  # strict <: ties keep the first CSR position
                second = best
                best = p
                bestpos = k
            elif p < second:
                second = p
        if bestpos >= 0 and best < np.inf:
            bid_col[i] = ind[bestpos]
            if second < np.inf:
                bid_val[i] = second + eps
            else:
                bid_val[i] = best + eps
        else:
            bid_col[i] = AUCTION_DROP
            bid_val[i] = 0.0


_HELPER_LOOPS = [
    "_pairwise",
    "_gather_pairwise",
    "_gather_seg_sum",
    "_pick_segments",
]
_KERNEL_LOOPS = [
    "_loop_sk_sweep",
    "_loop_sk_sweep_err",
    "_loop_choice_scaled",
    "_loop_choice_flat",
    "_loop_ks_phase1_scan",
    "_loop_ks_phase2_scan",
    "_loop_auction_bid",
]


# ----------------------------------------------------------------------
# views-dict adapters (``fn(lo, hi, views)`` -> positional loop call)
# ----------------------------------------------------------------------
def _ro(a: np.ndarray) -> np.ndarray:
    """A read-only view of *a* (no copy).

    Normalising every non-output argument to read-only keeps the jitted
    loops at exactly one compiled specialisation per kernel, whatever mix
    of frozen graph arrays and writable scratch vectors the caller binds
    — the parent warm-compiles once and forked pool workers reuse it.
    """
    if a.flags.writeable:
        a = a.view()
        a.flags.writeable = False
    return a


def _wrap_sk_sweep(lo: int, hi: int, v: Mapping[str, Any]) -> None:
    globals()["_loop_sk_sweep"](
        lo, hi, _ro(v["ptr"]), _ro(v["ind"]), _ro(v["opp"]), v["out"]
    )


def _wrap_sk_sweep_err(lo: int, hi: int, v: Mapping[str, Any]) -> float:
    return float(
        globals()["_loop_sk_sweep_err"](
            lo, hi, _ro(v["ptr"]), _ro(v["ind"]), _ro(v["opp"]),
            _ro(v["mine"]), v["out"],
        )
    )


def _wrap_choice_scaled(lo: int, hi: int, v: Mapping[str, Any]) -> None:
    globals()["_loop_choice_scaled"](
        lo, hi, _ro(v["ptr"]), _ro(v["ind"]), _ro(v["opp"]),
        _ro(v["draws"]), v["out"],
    )


def _wrap_choice_flat(lo: int, hi: int, v: Mapping[str, Any]) -> None:
    globals()["_loop_choice_flat"](
        lo, hi, _ro(v["ptr"]), _ro(v["ind"]), _ro(v["weights"]),
        _ro(v["draws"]), v["out"],
    )


def _wrap_ks_phase1_scan(lo: int, hi: int, v: Mapping[str, Any]) -> None:
    globals()["_loop_ks_phase1_scan"](
        lo, hi, _ro(v["alive"]), _ro(v["in_count"]), _ro(v["match"]),
        _ro(v["choice"]), v["cand"],
    )


def _wrap_ks_phase2_scan(lo: int, hi: int, v: Mapping[str, Any]) -> None:
    globals()["_loop_ks_phase2_scan"](
        lo, hi, int(v["nrows"]), _ro(v["match"]), _ro(v["choice"]), v["ok"]
    )


def _wrap_auction_bid(lo: int, hi: int, v: Mapping[str, Any]) -> None:
    globals()["_loop_auction_bid"](
        lo, hi, _ro(v["ptr"]), _ro(v["ind"]), _ro(v["prices"]),
        float(v["eps"]), float(v["dead"]), v["bid_col"], v["bid_val"],
    )


def _quiet(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Suppress numpy scalar-op RuntimeWarnings in the loop bodies.

    The un-jitted (pure Python) loops run on numpy *scalars*, which warn
    on overflow/underflow where the vectorized kernels stay silent; the
    values are identical either way, and jitted loops never warn.
    """

    def wrapper(lo: int, hi: int, v: Mapping[str, Any]) -> Any:
        with np.errstate(all="ignore"):
            return fn(lo, hi, v)

    wrapper.__name__ = fn.__name__
    return wrapper


_WRAPPERS: dict[str, Callable[[int, int, Mapping[str, Any]], Any]] = {
    "sk_sweep": _quiet(_wrap_sk_sweep),
    "sk_sweep_err": _quiet(_wrap_sk_sweep_err),
    "choice_scaled": _quiet(_wrap_choice_scaled),
    "choice_flat": _quiet(_wrap_choice_flat),
    "ks_phase1_scan": _wrap_ks_phase1_scan,
    "ks_phase2_scan": _wrap_ks_phase2_scan,
    "auction_bid": _quiet(_wrap_auction_bid),
}


# ----------------------------------------------------------------------
# Differential self-check probes
# ----------------------------------------------------------------------
def _probe_csr() -> tuple[np.ndarray, np.ndarray, int]:
    """A tiny adversarial CSR: every pairwise branch plus empty segments.

    Segment lengths cover ``n < 8``, the unrolled block (8..128 with a
    non-multiple-of-8 remainder), and the recursive split (> 128);
    includes empty and single-edge segments and repeated indices.
    """
    rng = np.random.default_rng(0xC0FFEE)
    degs = [0, 1, 2, 7, 8, 9, 16, 31, 0, 1, 127, 128, 129, 150, 300, 5]
    ncols = 37
    ptr = np.zeros(len(degs) + 1, dtype=np.int64)
    np.cumsum(np.asarray(degs, dtype=np.int64), out=ptr[1:])
    ind = rng.integers(0, ncols, size=int(ptr[-1]), dtype=np.int64)
    return ptr, ind, ncols


def _probe_values(rng: np.random.Generator, n: int) -> np.ndarray:
    """Magnitudes from subnormal to 1e18 with mixed signs of error terms."""
    exps = rng.integers(-320, 19, size=n)
    vals = rng.random(n) * np.power(10.0, exps.astype(np.float64))
    vals[rng.random(n) < 0.05] = 0.0
    return vals


def _probe_chunks(n: int) -> list[tuple[int, int]]:
    # Odd split points: exercises lo > 0 and single-row chunks.
    if n < 5:
        return [(0, n)]
    return [(0, 1), (1, n // 3), (n // 3, n - 1), (n - 1, n)]


def _probe_views(name: str) -> tuple[int, dict[str, Any], tuple[str, ...]]:
    """Deterministic probe ``(n, views, output names)`` for kernel *name*."""
    rng = np.random.default_rng(0xBEEF ^ zlib.crc32(name.encode()))
    ptr, ind, ncols = _probe_csr()
    n = ptr.shape[0] - 1
    if name in ("sk_sweep", "sk_sweep_err"):
        v = {
            "ptr": ptr, "ind": ind,
            "opp": _probe_values(rng, ncols),
            "out": np.zeros(n, dtype=np.float64),
        }
        if name == "sk_sweep_err":
            v["mine"] = _probe_values(rng, n)
        return n, v, ("out",)
    if name == "choice_scaled":
        return n, {
            "ptr": ptr, "ind": ind,
            "opp": _probe_values(rng, ncols),
            "draws": 1.0 - rng.random(n),
            "out": np.zeros(n, dtype=np.int64),
        }, ("out",)
    if name == "choice_flat":
        return n, {
            "ptr": ptr, "ind": ind,
            "weights": _probe_values(rng, int(ptr[-1])),
            "draws": 1.0 - rng.random(n),
            "out": np.zeros(n, dtype=np.int64),
        }, ("out",)
    if name == "ks_phase1_scan":
        match = rng.choice([NIL, 0, 3], size=n).astype(np.int64)
        choice = rng.integers(-1, n, size=n, dtype=np.int64)
        return n, {
            "alive": rng.random(n) < 0.8,
            "in_count": rng.integers(0, 2, size=n).astype(np.int64),
            "match": match, "choice": choice,
            "cand": np.zeros(n, dtype=bool),
        }, ("cand",)
    if name == "ks_phase2_scan":
        nrows = 3
        total = nrows + n
        match = rng.choice([NIL, 1], size=total).astype(np.int64)
        choice = rng.integers(-1, total, size=total, dtype=np.int64)
        return n, {
            "nrows": nrows, "match": match, "choice": choice,
            "ok": np.zeros(n, dtype=bool),
        }, ("ok",)
    if name == "auction_bid":
        prices = np.round(rng.random(ncols) * 4.0, 1)  # ties likely
        return n, {
            "ptr": ptr, "ind": ind, "prices": prices,
            "eps": 0.125, "dead": 3.0,
            "bid_col": np.zeros(n, dtype=np.int64),
            "bid_val": np.zeros(n, dtype=np.float64),
        }, ("bid_col", "bid_val")
    raise KeyError(name)


def _differential_check(name: str) -> None:
    """Run numpy and native on the probe; raise on any bitwise mismatch."""
    from repro.parallel.kernels import KERNELS

    kern = KERNELS[name]
    n, views_np, outputs = _probe_views(name)
    _, views_nat, _ = _probe_views(name)
    for lo, hi in _probe_chunks(n):
        ret_np = kern.fn(lo, hi, views_np)
        ret_nat = _WRAPPERS[name](lo, hi, views_nat)
        if not _bitwise_equal_ret(ret_np, ret_nat):
            raise AssertionError(
                f"native {name!r} chunk return diverges on [{lo},{hi}): "
                f"{ret_np!r} != {ret_nat!r}"
            )
    for out in outputs:
        a, b = views_np[out], views_nat[out]
        if a.dtype != b.dtype or not np.array_equal(a, b):
            raise AssertionError(
                f"native {name!r} output {out!r} diverges from numpy "
                f"on the probe input"
            )


def _bitwise_equal_ret(a: Any, b: Any) -> bool:
    if a is None and b is None:
        return True
    if isinstance(a, float) and isinstance(b, float):
        an, bn = np.float64(a), np.float64(b)
        return bool(an.tobytes() == bn.tobytes())
    return bool(a == b)


# ----------------------------------------------------------------------
# Per-kernel state + selection
# ----------------------------------------------------------------------
class _ImplState:
    __slots__ = ("name", "status", "seconds", "detail")

    def __init__(self, name: str) -> None:
        self.name = name
        self.status = "pending"  # pending | ready | fallback
        self.seconds: float | None = None
        self.detail: str = ""


_STATES: dict[str, _ImplState] = {n: _ImplState(n) for n in _WRAPPERS}
#: Reentrant: :func:`_compile_one` runs under it and warns under it too.
_LOCK = threading.RLock()
_FORCED = False
_WARNED: set[str] = set()


def _parse_mode(raw: str | None) -> str:
    if not raw:
        return "auto"
    mode = raw.strip().lower()
    if mode not in _VALID_MODES:
        warnings.warn(
            f"REPRO_KERNEL_IMPL={raw!r} is not one of {_VALID_MODES}; "
            f"using 'auto'",
            RuntimeWarning,
            stacklevel=3,
        )
        return "auto"
    return mode


_MODE: str = _parse_mode(os.environ.get("REPRO_KERNEL_IMPL"))


def set_kernel_impl(mode: str) -> None:
    """Select the kernel implementation tier: ``native``/``numpy``/``auto``.

    ``auto`` resolves to native when numba is importable.  Selecting
    ``native`` without numba is not an error — every kernel falls back to
    numpy with a single warning (the two tiers are bitwise identical, so
    the only observable difference is speed).  Shared-memory pool workers
    inherit the selection active when the pool forks.
    """
    global _MODE
    if mode not in _VALID_MODES:
        raise ValueError(
            f"kernel impl must be one of {_VALID_MODES}, got {mode!r}"
        )
    _MODE = mode
    if _tm.enabled():
        _tm.set_gauge("parallel.native.impl", 1.0 if _native_selected() else 0.0)


def get_kernel_impl() -> str:
    """The currently selected implementation tier (as set, unresolved)."""
    return _MODE


@contextlib.contextmanager
def kernel_impl(mode: str) -> Iterator[None]:
    """Context manager scoping :func:`set_kernel_impl` to a block."""
    previous = _MODE
    set_kernel_impl(mode)
    try:
        yield
    finally:
        set_kernel_impl(previous)


@contextlib.contextmanager
def force_native_impls() -> Iterator[None]:
    """Test hook: run the native loop bodies even without numba.

    Inside the block every registered kernel dispatches to the loop
    implementations regardless of compile state — pure Python when numba
    is absent.  That is orders of magnitude slower than numpy, but it
    lets the impl×backend equivalence matrix exercise the *exact* code
    numba compiles on hosts with no JIT available.  Test-sized inputs
    only.
    """
    global _FORCED
    previous_forced, previous_mode = _FORCED, _MODE
    _FORCED = True
    set_kernel_impl("native")
    try:
        yield
    finally:
        _FORCED = previous_forced
        set_kernel_impl(previous_mode)


def _native_selected() -> bool:
    if _MODE == "numpy":
        return False
    if _MODE == "native":
        return True
    return native_available()


def _warn_once(key: str, message: str) -> None:
    with _LOCK:
        if key in _WARNED:
            return
        _WARNED.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=4)


def _compile_one(state: _ImplState) -> None:
    """Jit + differentially verify one kernel; demote to numpy on failure."""
    t0 = time.perf_counter()
    try:
        if not native_available():
            raise ImportError("numba is not installed")
        _ensure_jitted()
        _differential_check(state.name)
    except Exception as exc:  # noqa: BLE001 - fallback must never error
        state.status = "fallback"
        state.seconds = time.perf_counter() - t0
        state.detail = f"{type(exc).__name__}: {exc}"
        if isinstance(exc, ImportError):
            _warn_once(
                "no-numba",
                "native kernel implementations requested but numba is not "
                "installed; falling back to the (bitwise-identical) numpy "
                "implementations",
            )
        else:
            _warn_once(
                f"kernel:{state.name}",
                f"native kernel {state.name!r} disabled "
                f"({state.detail}); falling back to numpy",
            )
        if _tm.enabled():
            _tm.incr("parallel.native.fallbacks")
        return
    state.status = "ready"
    state.seconds = time.perf_counter() - t0
    state.detail = f"numba {_NUMBA_VERSION}"
    if _tm.enabled():
        _tm.incr("parallel.native.compiled")
        _tm.observe("parallel.native.compile", state.seconds)


def active_fn(kern: Any) -> Callable[[int, int, Mapping[str, Any]], Any]:
    """The callable :func:`run_kernel` (or a pool worker) should execute.

    Resolves the selected tier for *kern*: the compiled native wrapper
    when native is selected and the kernel compiled + verified, else the
    registered numpy implementation.  Compilation happens lazily on the
    first native resolution and is cached (in-process and on disk).
    """
    if _FORCED:
        return _WRAPPERS.get(kern.name, kern.fn)
    if not _native_selected():
        return kern.fn
    state = _STATES.get(kern.name)
    if state is None:  # user-registered kernel without a native twin
        return kern.fn
    if state.status == "pending":
        with _LOCK:
            if state.status == "pending":
                _compile_one(state)
    return _WRAPPERS[kern.name] if state.status == "ready" else kern.fn


def warm_compile() -> dict[str, str]:
    """Eagerly compile (and verify) every native kernel; returns statuses.

    A no-op resolving straight to ``fallback`` when numba is absent.  The
    shared-memory pool calls this in the parent before forking so workers
    inherit ready dispatchers and never pay JIT cost; the on-disk cache
    (:func:`native_cache_dir`) makes even the parent's compile a cache
    load after the first process.
    """
    if _native_selected() and not _FORCED:
        with _LOCK:
            for state in _STATES.values():
                if state.status == "pending":
                    _compile_one(state)
    return {name: st.status for name, st in _STATES.items()}


def kernel_impls() -> list[dict[str, Any]]:
    """Per-kernel implementation report (for the ``kernels`` CLI and tests).

    One entry per registered kernel: the selected mode, whether the
    kernel would run native right now, its compile status
    (``pending``/``ready``/``fallback``), compile seconds, and detail
    (numba version or the fallback reason).
    """
    from repro.parallel.kernels import KERNELS

    rows: list[dict[str, Any]] = []
    for name, kern in sorted(KERNELS.items()):
        state = _STATES.get(name)
        fn = active_fn(kern)
        rows.append({
            "kernel": name,
            "mode": _MODE,
            "impl": "numpy" if fn is kern.fn else "native",
            "status": state.status if state is not None else "unavailable",
            "compile_seconds": state.seconds if state is not None else None,
            "detail": state.detail if state is not None else "no native twin",
        })
    return rows


def _reset_for_tests() -> None:
    """Reset selection, compile state, and warn-once sets (tests only)."""
    global _MODE, _FORCED
    with _LOCK:
        _WARNED.clear()
    for state in _STATES.values():
        state.status = "pending"
        state.seconds = None
        state.detail = ""
    _FORCED = False
    _MODE = _parse_mode(os.environ.get("REPRO_KERNEL_IMPL"))
