"""A deterministic simulator for shared-memory thread interleavings.

Algorithm bodies are written as Python *generators* that ``yield`` at every
interleaving point (i.e. between shared-memory accesses).  The scheduler
repeatedly picks a runnable thread and advances it by one step.  Because
each step is executed atomically by the simulator, an
:class:`~repro.parallel.atomics.AtomicArray` operation performed inside a
step is exactly an atomic hardware operation; everything between two yields
is private computation.

This turns "is Algorithm 4 correct under concurrency?" into a testable
property: run ``KarpSipserMT`` under thousands of random and adversarial
schedules and check the result is always a maximum matching of the choice
subgraph.  A real 16-core machine run — the paper's evidence — samples just
one schedule per execution; the simulator samples the schedule space.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Generator, Sequence

import numpy as np

from repro._typing import SeedLike, rng_from
from repro.errors import ScheduleError

__all__ = ["SchedulePolicy", "SimScheduler", "SimStats", "run_threads"]

#: A thread program: a generator yielding at interleaving points.
ThreadProgram = Generator[object, None, None]


class SchedulePolicy(str, enum.Enum):
    """How the simulator picks the next thread to advance."""

    #: Cycle through runnable threads in order (fair, deterministic).
    ROUND_ROBIN = "round_robin"
    #: Pick a uniformly random runnable thread each step (seeded).
    RANDOM = "random"
    #: Run each thread to completion before starting the next (the fully
    #: sequential schedule — useful as a baseline).
    SEQUENTIAL = "sequential"
    #: Advance the thread that has made the *least* progress so far, with
    #: random tie-break: keeps all threads maximally in-flight, which is
    #: where races live.
    ADVERSARIAL = "adversarial"


@dataclass
class SimStats:
    """Outcome of a simulated run."""

    #: Steps executed by each thread.
    steps_per_thread: list[int]
    #: Total scheduler steps.
    total_steps: int = 0
    #: Order in which threads were stepped (only kept when tracing).
    trace: list[int] = field(default_factory=list)

    @property
    def makespan_bound(self) -> int:
        """A lower bound on parallel time: the longest thread."""
        return max(self.steps_per_thread) if self.steps_per_thread else 0


class SimScheduler:
    """Interleave a set of thread programs under a scheduling policy."""

    def __init__(
        self,
        programs: Sequence[ThreadProgram],
        policy: SchedulePolicy | str = SchedulePolicy.RANDOM,
        seed: SeedLike = None,
        *,
        keep_trace: bool = False,
        max_steps: int | None = None,
    ) -> None:
        self.programs = list(programs)
        self.policy = SchedulePolicy(policy)
        self.rng = rng_from(seed)
        self.keep_trace = keep_trace
        self.max_steps = max_steps

    def run(self) -> SimStats:
        """Execute all programs to completion; return step statistics."""
        n = len(self.programs)
        live = list(range(n))
        steps = [0] * n
        stats = SimStats(steps_per_thread=steps)
        rr_cursor = 0
        while live:
            if self.max_steps is not None and stats.total_steps >= self.max_steps:
                raise ScheduleError(
                    f"simulated run exceeded max_steps={self.max_steps}"
                )
            if self.policy is SchedulePolicy.ROUND_ROBIN:
                pick_pos = rr_cursor % len(live)
                rr_cursor += 1
            elif self.policy is SchedulePolicy.RANDOM:
                pick_pos = int(self.rng.integers(len(live)))
            elif self.policy is SchedulePolicy.SEQUENTIAL:
                pick_pos = 0
            else:  # ADVERSARIAL: least-progress thread, random tie-break
                progress = np.array([steps[t] for t in live])
                minimum = progress.min()
                candidates = np.flatnonzero(progress == minimum)
                pick_pos = int(candidates[self.rng.integers(candidates.size)])
            tid = live[pick_pos]
            try:
                next(self.programs[tid])
                steps[tid] += 1
                stats.total_steps += 1
                if self.keep_trace:
                    stats.trace.append(tid)
            except StopIteration:
                live.pop(pick_pos)
        return stats


def run_threads(
    make_programs: Callable[[int], Sequence[ThreadProgram]] | Sequence[ThreadProgram],
    n_threads: int | None = None,
    policy: SchedulePolicy | str = SchedulePolicy.RANDOM,
    seed: SeedLike = None,
) -> SimStats:
    """Convenience wrapper: build programs and run them to completion.

    *make_programs* is either a ready list of generators, or a callable
    receiving ``n_threads`` and returning one.
    """
    if callable(make_programs):
        if n_threads is None:
            raise ScheduleError("n_threads is required with a program factory")
        programs = make_programs(n_threads)
    else:
        programs = make_programs
    return SimScheduler(programs, policy=policy, seed=seed).run()
