"""Segment reductions over CSR/CSC pointer arrays.

``segment_sums`` is the workhorse of Sinkhorn–Knopp: for every row (or
column) sum a gathered value over its adjacency slice.  It is built on
``numpy.add.reduceat`` with the care that function needs around empty
segments (reduceat returns ``values[ptr[i]]`` for an empty segment instead
of 0, and rejects indices equal to ``len(values)``).
"""

from __future__ import annotations

import numpy as np

from repro._typing import FloatArray, IndexArray
from repro.errors import ShapeError
from repro.parallel.backends import Backend, SerialBackend

__all__ = ["segment_sums", "segment_sums_parallel", "gather_segments"]


def gather_segments(
    ptr: IndexArray, ind: IndexArray, idxs: IndexArray
) -> tuple[IndexArray, IndexArray]:
    """Concatenate CSR segments ``ind[ptr[i]:ptr[i+1]]`` for ``i ∈ idxs``.

    Returns ``(values, sub_ptr)`` — the concatenated entries and the new
    segment boundaries — using vectorised range arithmetic only.  This is
    the sub-CSR extraction both the streaming rescaler and the auction
    engine use to restrict a sweep to a dirty/free subset of rows.
    """
    idxs = np.asarray(idxs, dtype=np.int64)
    degs = ptr[idxs + 1] - ptr[idxs]
    sub_ptr = np.zeros(idxs.shape[0] + 1, dtype=np.int64)
    np.cumsum(degs, out=sub_ptr[1:])
    total = int(sub_ptr[-1])
    flat = np.arange(total, dtype=np.int64) + np.repeat(
        ptr[idxs] - sub_ptr[:-1], degs
    )
    return ind[flat], sub_ptr


def segment_sums(values: FloatArray, ptr: IndexArray) -> FloatArray:
    """Per-segment sums: ``out[i] = values[ptr[i]:ptr[i+1]].sum()``.

    Handles empty segments (including trailing ones) correctly, unlike a
    bare ``np.add.reduceat``.
    """
    values = np.asarray(values, dtype=np.float64)
    ptr = np.asarray(ptr)
    if ptr.ndim != 1 or ptr.shape[0] < 1:
        raise ShapeError("ptr must be a 1-D pointer array")
    n_seg = ptr.shape[0] - 1
    if n_seg == 0:
        return np.empty(0, dtype=np.float64)
    out = np.zeros(n_seg, dtype=np.float64)
    if values.shape[0] == 0:
        return out
    nonempty = ptr[1:] > ptr[:-1]
    if nonempty.all():
        # Fast path (the common case on cleaned graphs): every ptr[:-1]
        # entry is a valid start of its own segment, so reduceat applies
        # directly — no mask allocation, no scatter.
        return np.add.reduceat(values, ptr[:-1])
    if not nonempty.any():
        return out
    # reduceat only at the starts of non-empty segments: consecutive
    # non-empty starts delimit exactly one segment each (the empty
    # segments between them do not advance ptr), and every such start is
    # a valid index < len(values).
    starts = ptr[:-1][nonempty]
    out[nonempty] = np.add.reduceat(values, starts)
    return out


def segment_sums_parallel(
    values: FloatArray,
    ptr: IndexArray,
    backend: Backend | None = None,
) -> FloatArray:
    """Backend-parallel :func:`segment_sums`.

    The segment axis is statically partitioned across workers; each worker
    reduces a contiguous block of segments (its slice of ``values`` is also
    contiguous, so this is the cache-friendly decomposition).
    """
    backend = backend or SerialBackend()
    ptr = np.asarray(ptr)
    n_seg = ptr.shape[0] - 1
    values = np.asarray(values, dtype=np.float64)
    if n_seg <= 0:
        return np.empty(max(n_seg, 0), dtype=np.float64)

    # Workers *return* their block of sums (rather than writing into a
    # shared output array) so the kernel also runs on process backends,
    # where side effects stay in the child.  Each segment's sum depends
    # only on its own slice, so the concatenated result is bitwise
    # identical across backends and worker counts.
    def work(lo: int, hi: int) -> FloatArray:
        sub_ptr = ptr[lo : hi + 1] - ptr[lo]
        sub_vals = values[ptr[lo] : ptr[hi]]
        return segment_sums(sub_vals, sub_ptr)

    pieces = backend.map_ranges(work, n_seg)
    return np.concatenate(pieces)
