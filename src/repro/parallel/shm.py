"""``SharedMemoryBackend`` — a persistent zero-copy worker pool.

The paper's speedups assume shared-memory threads: workers read the CSR
arrays in place and write results in place, and the only coordination
cost is handing out loop chunks.  CPython's process backends break that
assumption — ``ProcessBackend`` forks per call and pickles results back.
This backend restores it with real processes:

* **Persistent pool** — workers are forked once (lazily, on the first
  kernel call) and reused across calls; a call costs queue messages, not
  ``fork()``.
* **Published arrays** — every array a kernel touches lives in a
  ``multiprocessing.shared_memory`` segment.  Read-only arrays (graph
  CSR/CSC — :class:`~repro.graph.BipartiteGraph` freezes them) are copied
  in **once** and cached; writable arrays get a cached segment that is
  synced in per call and, for outputs, synced back out.  Workers attach
  each segment once and cache the mapping.
* **Kernel tasks** — workers execute *registered kernels*
  (:mod:`repro.parallel.kernels`) addressed by name.  A task message is
  ``(call id, chunk, kernel name, lo, hi, bindings, scalars, fault
  spec)`` where a binding is ``(segment name, shape, dtype)`` — a few
  hundred bytes regardless of graph size.  No array ever crosses the
  process boundary by pickling; ``last_task_bytes`` records the actual
  serialized task sizes so tests can enforce that.
* **Dynamic load balance** — all chunks of a call go into one shared
  queue and workers race for them, so a straggler chunk (skewed degree
  distribution) only delays its own worker.  The chunk grid oversubscribes
  the pool (see :func:`~repro.parallel.kernels.kernel_grid`).
* **Crash semantics** — a worker that dies mid-call (including injected
  ``crash`` faults, which ``os._exit`` inside the worker) is detected by
  liveness polling; the call raises
  :class:`~repro.errors.WorkerCrashError` and the next call respawns a
  fresh pool with fresh queues, so one death never poisons later calls.
  ``"resilient:shm"`` composes: the wrapper retries chunks on its own
  threads (closures cannot reach pre-forked workers, so resilient
  attempts use the in-process kernel path; the pool serves plain
  ``run_kernel`` callers).
* **Telemetry** — per-chunk wall times measured inside the workers feed
  the standard ``parallel.shm.chunk`` timer and imbalance gauge.

Generic ``map_ranges``/``map_chunks`` calls (arbitrary closures, which
cannot be shipped to pre-forked workers by name) fall back to an
in-process thread pool — correct, and still parallel for GIL-releasing
numpy work.  The zero-copy path is kernel-only by design.

Lifecycle: call :meth:`SharedMemoryBackend.close` (or use the backend as
a context manager) to stop workers and unlink segments.  An ``atexit``
hook closes leaked backends so interpreter shutdown never trips the
``resource_tracker`` leak warning.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import threading
import time
from multiprocessing import resource_tracker
from multiprocessing.shared_memory import SharedMemory
from queue import Empty
from typing import Any, Mapping

import numpy as np

from repro import telemetry as _tm
from repro.errors import BackendError, WorkerCrashError
from repro.parallel.backends import (
    Backend,
    Parts,
    RangeFn,
    _record_chunks,
    default_worker_count,
)
from repro.parallel import native as _native
from repro.parallel.kernels import KERNELS, Kernel
from repro.resilience import faults as _faults

__all__ = ["SharedMemoryBackend", "reclaim_stale_segments"]

#: Poll interval while waiting for chunk acks; liveness of the pool is
#: checked at this cadence, so a crashed worker surfaces in ~this time.
_ACK_POLL_SECONDS = 0.05

#: Backends not yet closed, for the atexit sweep.  Strong references on
#: purpose: an abandoned backend must stay reachable until its segments
#: are unlinked — were it garbage-collected first, the sweep would miss
#: it and the segments would linger until the resource tracker's
#: shutdown pass (which warns about them as leaks).  ``close()`` removes
#: the entry, so disciplined users pay nothing.
_OPEN_BACKENDS: "set[SharedMemoryBackend]" = set()


@atexit.register
def _close_leaked_backends() -> None:  # pragma: no cover - shutdown path
    for backend in list(_OPEN_BACKENDS):
        backend.close()


#: Namespace prefix for this library's shared-memory segments.  The
#: creator pid is baked into each name (8 hex digits after the prefix),
#: so a later process can tell a live pool's segment from one orphaned
#: by a SIGKILLed daemon — the atexit sweep above never runs for those.
#: Kept short: macOS caps shm names at 31 bytes including the slash.
_SEGMENT_PREFIX = "rpr"
_SHM_DIR = "/dev/shm"
_segment_counter = itertools.count()


def _next_segment_name() -> str:
    return (
        f"{_SEGMENT_PREFIX}{os.getpid():08x}x{next(_segment_counter):04x}"
    )


def reclaim_stale_segments() -> int:
    """Unlink namespaced segments whose creator process is gone.

    A daemon killed with SIGKILL never runs its atexit sweep, so its
    pool's segments would otherwise accumulate in ``/dev/shm`` across
    restarts.  Called on backend construction and daemon startup; counts
    reclaimed segments in ``parallel.shm.reclaimed_segments``.  Returns
    the number reclaimed (0 on platforms without a visible shm
    directory).
    """
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux
        return 0
    reclaimed = 0
    for name in os.listdir(_SHM_DIR):
        if not name.startswith(_SEGMENT_PREFIX):
            continue
        pid_hex = name[len(_SEGMENT_PREFIX) : len(_SEGMENT_PREFIX) + 8]
        if len(pid_hex) < 8:
            continue
        try:
            pid = int(pid_hex, 16)
        except ValueError:
            continue
        if pid == os.getpid():
            continue
        try:
            os.kill(pid, 0)
            continue  # creator still alive; its segment, its business
        except ProcessLookupError:
            pass
        except PermissionError:  # pragma: no cover - other-user process
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
            reclaimed += 1
        except FileNotFoundError:  # pragma: no cover - raced another sweep
            pass
    if reclaimed and _tm.enabled():
        _tm.incr("parallel.shm.reclaimed_segments", reclaimed)
    return reclaimed


class _Segment:
    """A published array: its shared segment plus the parent-side view."""

    __slots__ = ("shm", "view", "owner", "writable")

    def __init__(self, arr: np.ndarray) -> None:
        while True:
            try:
                self.shm = SharedMemory(
                    create=True,
                    size=max(arr.nbytes, 1),
                    name=_next_segment_name(),
                )
                break
            except FileExistsError:  # pragma: no cover - recycled pid
                continue
        self.view: np.ndarray = np.ndarray(
            arr.shape, dtype=arr.dtype, buffer=self.shm.buf
        )
        self.writable = arr.flags.writeable
        # Read-only arrays are synced once and cached by identity; pin the
        # array so its id() cannot be recycled while the cache entry lives.
        # Writable arrays are re-synced every call, so no pin is needed.
        self.owner: np.ndarray | None = None if self.writable else arr

    @property
    def binding(self) -> tuple[str, tuple[int, ...], str]:
        return (self.shm.name, self.view.shape, self.view.dtype.str)

    def matches(self, arr: np.ndarray) -> bool:
        return (
            self.view.shape == arr.shape
            and self.view.dtype == arr.dtype
            and (self.owner is None or self.owner is arr)
        )

    def destroy(self) -> None:
        self.view = None  # release the buffer export before closing
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def _worker_main(task_q, result_q) -> None:
    """Worker loop: attach segments on demand, run kernels by name, ack.

    Runs in a forked child.  ``None`` is the shutdown sentinel.  Acks are
    ``(call_id, chunk_idx, ok, seconds, payload)`` — a float/exception,
    never an array (kernel outputs land in the shared segments).
    """
    segments: dict[str, SharedMemory] = {}
    while True:
        task = task_q.get()
        if task is None:
            break
        call_id, idx, name, lo, hi, bindings, scalars, spec, drops = task
        t0 = time.perf_counter()
        try:
            for dead in drops:
                seg = segments.pop(dead, None)
                if seg is not None:
                    seg.close()
            kern = KERNELS.get(name)
            if kern is None:
                raise BackendError(
                    f"kernel {name!r} is not registered in this worker; "
                    f"register kernels before the pool spawns"
                )
            views: dict[str, Any] = dict(scalars)
            for role, (seg_name, shape, dtype_str) in bindings.items():
                shm = segments.get(seg_name)
                if shm is None:
                    shm = SharedMemory(name=seg_name)
                    segments[seg_name] = shm
                view = np.ndarray(
                    shape, dtype=np.dtype(dtype_str), buffer=shm.buf
                )
                if role not in kern.outputs:
                    view.flags.writeable = False
                views[role] = view
            # Resolve the active implementation tier (native/numpy) per
            # task: the worker inherited the selection — and any warm-
            # compiled dispatchers — when the pool forked.
            fn = _native.active_fn(kern)
            ret = _faults.execute_with_fault(
                spec,
                lambda a, b: fn(a, b, views),
                lo,
                hi,
                in_child=True,
            )
            result_q.put(
                (call_id, idx, True, time.perf_counter() - t0, ret)
            )
        except BaseException as exc:  # noqa: BLE001 - report to the parent
            dt = time.perf_counter() - t0
            try:
                result_q.put((call_id, idx, False, dt, exc))
            except Exception:  # payload not picklable
                result_q.put(
                    (call_id, idx, False, dt,
                     BackendError(f"worker error not picklable: {exc!r}"))
                )


class SharedMemoryBackend(Backend):
    """Persistent worker pool over shared-memory published arrays.

    Parameters
    ----------
    n_workers:
        Pool size; defaults to
        :func:`~repro.parallel.backends.default_worker_count` (the CPU
        affinity mask).
    max_segments:
        Cap on cached published arrays; least-recently-published entries
        beyond it are unlinked (workers drop their attachment with the
        next task they receive).
    """

    label = "shm"
    shares_memory = True
    supports_kernels = True

    def __init__(
        self, n_workers: int | None = None, *, max_segments: int = 128
    ) -> None:
        import multiprocessing as mp

        self.n_workers = (
            default_worker_count() if n_workers is None else n_workers
        )
        if self.n_workers < 1:
            raise BackendError(
                f"n_workers must be >= 1, got {self.n_workers}"
            )
        if max_segments < 8:
            raise BackendError(
                f"max_segments must be >= 8, got {max_segments}"
            )
        try:
            self._ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX
            raise BackendError(
                "SharedMemoryBackend requires fork support"
            ) from exc
        self.max_segments = max_segments
        self._segments: dict[int, _Segment] = {}  # id(array) -> segment
        self._pending_drops: list[str] = []
        self._procs: list[Any] = []
        self._task_q: Any = None
        self._result_q: Any = None
        self._call_counter = 0
        self._fallback_pool = None
        # One kernel call at a time: the task/result queues cannot
        # multiplex acks of concurrent calls (a second caller would steal
        # or drop the first one's), so concurrent callers — e.g. several
        # serving workers sharing one pool — queue here instead.  The
        # same lock is the drain barrier: ``drain()`` acquires it, so it
        # only proceeds once in-flight chunks have been collected.
        self._call_lock = threading.Lock()
        self._draining = False
        #: Serialized byte size of each task of the most recent kernel
        #: call, and the raw task tuples — the no-array-pickling
        #: regression test reads these.
        self.last_task_bytes: list[int] = []
        self.last_tasks: list[tuple] = []
        reclaim_stale_segments()
        _OPEN_BACKENDS.add(self)

    # -- kernel execution (the zero-copy path) -------------------------

    def run_kernel(
        self,
        kern: Kernel,
        parts: Parts,
        arrays: dict[str, np.ndarray],
        scalars: Mapping[str, Any],
    ) -> list[Any]:
        """Execute *kern* over *parts* on the pool; returns per-chunk
        return values in grid order.  Called via
        :func:`repro.parallel.kernels.run_kernel`."""
        if self._draining:
            raise BackendError(
                "SharedMemoryBackend is draining; no new kernel calls"
            )
        with self._call_lock:
            return self._run_kernel_locked(kern, parts, arrays, scalars)

    def _run_kernel_locked(
        self,
        kern: Kernel,
        parts: Parts,
        arrays: dict[str, np.ndarray],
        scalars: Mapping[str, Any],
    ) -> list[Any]:
        if self._draining:
            raise BackendError(
                "SharedMemoryBackend is draining; no new kernel calls"
            )
        self._ensure_pool()
        plan = _faults.active_plan()
        specs = (
            plan.plan_call(self.label, len(parts))
            if plan is not None
            else [None] * len(parts)
        )
        bindings: dict[str, tuple[str, tuple[int, ...], str]] = {}
        for role, arr in arrays.items():
            seg = self._publish(arr, sync=role not in kern.outputs)
            bindings[role] = seg.binding
        drops = tuple(self._pending_drops)
        self._pending_drops.clear()

        self._call_counter += 1
        call_id = self._call_counter
        tasks = [
            (
                call_id, idx, kern.name, lo, hi, bindings, dict(scalars),
                specs[idx], drops,
            )
            for idx, (lo, hi) in enumerate(parts)
        ]
        self.last_tasks = tasks
        self.last_task_bytes = [len(pickle.dumps(t)) for t in tasks]
        for task in tasks:
            self._task_q.put(task)

        durations: list[float] = []
        try:
            rets = self._collect(call_id, len(parts), durations)
        finally:
            if _tm.enabled():
                _record_chunks(self.label, durations)
        for role in kern.outputs:
            arr = arrays[role]
            np.copyto(arr, self._segments[id(arr)].view)
        return rets

    def _collect(
        self, call_id: int, n_chunks: int, durations: list[float]
    ) -> list[Any]:
        """Drain acks for one call, polling worker liveness in between."""
        results: dict[int, Any] = {}
        failure: BaseException | None = None
        pending = n_chunks
        while pending:
            try:
                msg = self._result_q.get(timeout=_ACK_POLL_SECONDS)
            except Empty:
                dead = [p for p in self._procs if not p.is_alive()]
                if dead:
                    statuses = ", ".join(
                        str(p.exitcode) for p in dead
                    )
                    # The pool is compromised: chunks handed to the dead
                    # worker will never be acked.  Burn it; the next call
                    # respawns with fresh queues.
                    self._stop_pool()
                    _tm.incr("parallel.shm.worker_crashes")
                    raise WorkerCrashError(
                        f"{len(dead)} pool worker(s) exited with status "
                        f"{statuses} mid-call; pool will respawn on the "
                        f"next call"
                    )
                continue
            cid, idx, ok, dt, payload = msg
            if cid != call_id:
                continue  # stale ack from an aborted earlier call
            pending -= 1
            durations.append(dt)
            if ok:
                results[idx] = payload
            elif failure is None:
                failure = (
                    payload
                    if isinstance(payload, BaseException)
                    else BackendError(str(payload))
                )
        if failure is not None:
            raise failure
        return [results[i] for i in range(n_chunks)]

    # -- publishing ----------------------------------------------------

    def _publish(self, arr: np.ndarray, *, sync: bool) -> _Segment:
        """Return the shared segment for *arr*, creating/syncing it.

        Read-only arrays sync once (the cache pins them, so identity
        implies content).  Writable arrays sync on every call — the
        backend cannot soundly detect in-place mutation, and the memcpy
        is O(n) against the kernels' O(nnz) work.  Output arrays skip the
        inbound sync (*sync* False); their content is copied back after
        the call.
        """
        if not isinstance(arr, np.ndarray):
            raise BackendError(
                f"kernels require numpy array views, got {type(arr)!r}"
            )
        if not arr.flags.c_contiguous:
            raise BackendError(
                "kernels require C-contiguous arrays (publish a copy)"
            )
        key = id(arr)
        seg = self._segments.get(key)
        if seg is not None and seg.matches(arr):
            self._segments[key] = self._segments.pop(key)  # LRU touch
            if seg.writable and sync:
                np.copyto(seg.view, arr)
            return seg
        if seg is not None:
            self._drop_segment(key)
        while len(self._segments) >= self.max_segments:
            self._drop_segment(next(iter(self._segments)))
        seg = _Segment(arr)
        if sync:
            np.copyto(seg.view, arr)
        self._segments[key] = seg
        return seg

    def _drop_segment(self, key: int) -> None:
        seg = self._segments.pop(key)
        self._pending_drops.append(seg.shm.name)
        seg.destroy()

    # -- pool lifecycle ------------------------------------------------

    def _ensure_pool(self) -> None:
        if self._procs and all(p.is_alive() for p in self._procs):
            return
        self._stop_pool()
        # Warm-compile the native kernel tier *before* forking: children
        # inherit the compiled dispatchers through fork, so no worker
        # ever pays JIT cost mid-task (a compile inside a deadline-
        # supervised chunk would read as a straggler).  No-op when the
        # numpy tier is selected or numba is absent.
        _native.warm_compile()
        # Start the segment tracker *before* forking: children inherit
        # the tracker connection, so their attach registrations coalesce
        # with the parent's instead of spawning per-child trackers (whose
        # exit would unlink segments still in use).
        resource_tracker.ensure_running()
        self._task_q = self._ctx.Queue()
        self._result_q = self._ctx.Queue()
        self._procs = [
            self._ctx.Process(
                target=_worker_main,
                args=(self._task_q, self._result_q),
                daemon=True,
                name=f"shm-worker-{i}",
            )
            for i in range(self.n_workers)
        ]
        for proc in self._procs:
            proc.start()
        _tm.incr("parallel.shm.pool_spawns")

    def _stop_pool(self) -> None:
        if self._task_q is not None:
            try:
                for _ in self._procs:
                    self._task_q.put(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
        for proc in self._procs:
            proc.join(timeout=1.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        for q in (self._task_q, self._result_q):
            if q is not None:
                q.close()
                q.cancel_join_thread()
        self._procs = []
        self._task_q = None
        self._result_q = None

    def drain(self, timeout: float | None = None) -> bool:
        """Finish the in-flight kernel call, then close the backend.

        Sets the draining flag (new kernel calls are rejected with a
        typed :class:`~repro.errors.BackendError`), waits for the current
        call — all its queued chunks included — to be collected, then
        stops the pool and unlinks every segment.  Returns ``True`` when
        that completed within *timeout* (``None`` = wait forever);
        ``False`` leaves the backend draining but open, so the caller can
        retry or force :meth:`close`.
        """
        self._draining = True
        if not self._call_lock.acquire(
            timeout=-1 if timeout is None else timeout
        ):
            return False
        try:
            self.close()
        finally:
            self._call_lock.release()
        return True

    def healthy(self) -> bool:
        """True while the pool can serve: not spawned yet, or all alive."""
        return not self._procs or all(p.is_alive() for p in self._procs)

    def close(self) -> None:
        """Stop the pool and unlink every published segment."""
        self._stop_pool()
        if self._fallback_pool is not None:
            self._fallback_pool.shutdown(wait=True)
            self._fallback_pool = None
        for key in list(self._segments):
            seg = self._segments.pop(key)
            seg.destroy()
        self._pending_drops.clear()
        _OPEN_BACKENDS.discard(self)

    # -- generic map fallback ------------------------------------------

    def _map_ranges(self, fn: RangeFn, parts: Parts) -> list[Any]:
        """Arbitrary closures cannot be shipped to pre-forked workers by
        name, so generic maps run on an in-process thread pool (parallel
        for GIL-releasing numpy work, like :class:`ThreadBackend`)."""
        if len(parts) <= 1:
            return [fn(lo, hi) for lo, hi in parts]
        if self._fallback_pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._fallback_pool = ThreadPoolExecutor(
                max_workers=self.n_workers,
                thread_name_prefix="shm-fallback",
            )
        futures = [self._fallback_pool.submit(fn, lo, hi) for lo, hi in parts]
        return [f.result() for f in futures]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedMemoryBackend(n_workers={self.n_workers}, "
            f"pool={'up' if self._procs else 'down'}, "
            f"segments={len(self._segments)})"
        )
