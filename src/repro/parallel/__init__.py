"""Shared-memory parallelism substrate.

The paper's target is a 16-core OpenMP machine with gcc atomic built-ins.
This package reproduces that environment three ways:

* :mod:`repro.parallel.atomics` + :mod:`repro.parallel.simthread` — a
  deterministic multi-thread *simulator*: algorithm bodies are written as
  generators that yield between shared-memory accesses, and a scheduler
  interleaves them (round-robin, random, or adversarial).  This is how the
  concurrency-safety claims of ``KarpSipserMT`` (Algorithm 4) are verified —
  under far more hostile schedules than one real machine run would exercise.
* :mod:`repro.parallel.backends` — real execution backends (serial /
  threads / processes) for the data-parallel kernels where numpy releases
  the GIL.
* :mod:`repro.parallel.machine` — a calibrated cost model that converts the
  *work profile* of a run (per-chunk operation counts) into simulated
  parallel times for p threads, with OpenMP-style dynamic/guided/static
  scheduling and a memory-bandwidth roofline.  The speedup figures
  (Figures 3 and 4) are produced by this model; EXPERIMENTS.md discusses
  the substitution.
"""

from repro.parallel.atomics import AtomicArray
from repro.parallel.backends import (
    Backend,
    SerialBackend,
    ThreadBackend,
    ProcessBackend,
    default_worker_count,
    get_backend,
)
from repro.parallel.kernels import (
    KERNELS,
    Kernel,
    kernel_chunk_override,
    register_kernel,
    run_kernel,
)
from repro.parallel.machine import MachineModel, ScheduleKind
from repro.parallel.native import (
    force_native_impls,
    get_kernel_impl,
    kernel_impl,
    kernel_impls,
    native_available,
    native_cache_dir,
    set_kernel_impl,
    warm_compile,
)
from repro.parallel.partition import chunk_ranges, static_partition
from repro.parallel.shm import SharedMemoryBackend, WorkerCrashError
from repro.parallel.simthread import SimScheduler, SchedulePolicy, run_threads
from repro.parallel.mpi_sim import SimComm, run_ranks

__all__ = [
    "AtomicArray",
    "Backend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "SharedMemoryBackend",
    "WorkerCrashError",
    "default_worker_count",
    "get_backend",
    "KERNELS",
    "Kernel",
    "kernel_chunk_override",
    "register_kernel",
    "run_kernel",
    "force_native_impls",
    "get_kernel_impl",
    "kernel_impl",
    "kernel_impls",
    "native_available",
    "native_cache_dir",
    "set_kernel_impl",
    "warm_compile",
    "MachineModel",
    "ScheduleKind",
    "chunk_ranges",
    "static_partition",
    "SimScheduler",
    "SchedulePolicy",
    "run_threads",
    "SimComm",
    "run_ranks",
]
