"""Registered data-parallel kernels shared by every execution backend.

The hot loops of the library — the Sinkhorn–Knopp column/row sweeps, the
scaled 1-out choice sampling, and the ``KarpSipserMT`` phase scans — are
*registered kernels*: named module-level functions with the signature
``fn(lo, hi, views)`` that read whole arrays from *views* and write only
the ``[lo, hi)`` slice of their declared output arrays (plus a small
per-chunk return value).  Registering them buys three things:

* every backend runs the *same* function over the *same* chunk grid, so
  results are bitwise identical across serial, threads, processes, and
  the shared-memory pool by construction;
* the :class:`~repro.parallel.shm.SharedMemoryBackend` can ship a kernel
  *by name* to its persistent workers — the task message is a name plus
  segment bindings and a range, never the arrays themselves;
* process-isolated backends can still participate: the dispatcher has
  their workers return the output slices and reassembles in the parent.

Chunk grid
----------

``kernel_grid`` decomposes ``range(n)`` into chunks that depend only on
``n`` and the kernel's registered granularity — never on the backend or
its worker count.  Chunk-local arithmetic (e.g. the choice kernels'
prefix sums) therefore produces identical floating-point results on any
backend; dynamic load balance comes from *scheduling* the fixed chunks,
not from reshaping them.

Kernel contract
---------------

* outputs must not alias inputs — retries and corrupt-result recovery
  re-execute a chunk and must be idempotent;
* a kernel may read any element of any input view (gathers are fine) but
  may write only ``out[lo:hi]`` slices of its declared outputs;
* the per-chunk return value should be a scalar or a small tuple — on
  the shared-memory pool it crosses a process boundary.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

import numpy as np

from repro import telemetry as _tm
from repro._typing import FloatArray
from repro.errors import BackendError
from repro.matching.matching import NIL
from repro.parallel import native as _native
from repro.parallel.backends import Backend, get_backend
from repro.parallel.partition import chunk_ranges
from repro.parallel.reduction import segment_sums
from repro.resilience import faults as _faults

__all__ = [
    "Kernel",
    "KERNELS",
    "register_kernel",
    "kernel_grid",
    "kernel_chunk_override",
    "effective_chunk",
    "run_kernel",
    "AUCTION_DROP",
]

#: Below this chunk size the per-chunk dispatch overhead dominates the
#: numpy work, so small inputs run as a single chunk.
DEFAULT_MIN_CHUNK = 8192
#: Upper bound on the number of chunks per call — ~4x oversubscription
#: for a typical 8-worker pool, which is what the dynamic chunk queue
#: needs to absorb skewed-degree stragglers.
DEFAULT_TARGET_CHUNKS = 32

RangeKernel = Callable[[int, int, Mapping[str, Any]], Any]


@dataclass(frozen=True)
class Kernel:
    """A registered kernel: the function plus its dispatch metadata."""

    name: str
    fn: RangeKernel
    #: View names whose ``[lo, hi)`` slice the kernel writes.
    outputs: tuple[str, ...] = ()
    min_chunk: int = DEFAULT_MIN_CHUNK
    target_chunks: int = DEFAULT_TARGET_CHUNKS


#: The global registry, keyed by kernel name.  Populated at import time —
#: shared-memory workers fork with this registry and look kernels up by
#: name, so kernels must be registered before the worker pool spawns.
KERNELS: dict[str, Kernel] = {}


def register_kernel(
    name: str,
    *,
    outputs: tuple[str, ...] = (),
    min_chunk: int = DEFAULT_MIN_CHUNK,
    target_chunks: int = DEFAULT_TARGET_CHUNKS,
) -> Callable[[RangeKernel], RangeKernel]:
    """Decorator registering a ``fn(lo, hi, views)`` kernel under *name*."""

    def deco(fn: RangeKernel) -> RangeKernel:
        if name in KERNELS:
            raise BackendError(f"kernel {name!r} is already registered")
        KERNELS[name] = Kernel(
            name=name, fn=fn, outputs=tuple(outputs),
            min_chunk=min_chunk, target_chunks=target_chunks,
        )
        return fn

    return deco


#: Test hook: a forced chunk size (see :func:`kernel_chunk_override`).
_CHUNK_OVERRIDE: int | None = None


@contextlib.contextmanager
def kernel_chunk_override(chunk: int) -> Iterator[None]:
    """Force every kernel grid to chunk size *chunk* inside the block.

    Exists so equivalence tests can exercise multi-chunk execution on
    graphs far below :data:`DEFAULT_MIN_CHUNK`.  All backends compared
    inside one block see the same grid, so bitwise identity still holds.
    """
    global _CHUNK_OVERRIDE
    previous = _CHUNK_OVERRIDE
    _CHUNK_OVERRIDE = chunk
    try:
        yield
    finally:
        _CHUNK_OVERRIDE = previous


#: Memoized chunk layouts keyed by ``(n, chunk)`` — the grid is pure in
#: those two numbers, and hot callers (SK iterations, KS rounds, auction
#: sweeps, serve/stream epochs) rebuild the same layout thousands of
#: times.  Bounded: the working set is a handful of (size, granularity)
#: pairs per process.
_GRID_CACHE: dict[tuple[int, int], tuple[tuple[int, int], ...]] = {}
_GRID_CACHE_CAP = 256


def effective_chunk(n: int, name: str) -> int:
    """The chunk size :func:`kernel_grid` would use for a size-*n* run.

    Shard planning aligns partition bounds to this value so a kernel run
    on a rebased slice sees the same chunk decomposition (shifted by the
    slice start) as the serial run on the whole axis — the property that
    makes chunk-local arithmetic (the choice kernel's segment cumsum)
    bitwise identical between sharded and unsharded execution.
    """
    kern = KERNELS[name]
    if _CHUNK_OVERRIDE is not None:
        return _CHUNK_OVERRIDE
    return max(kern.min_chunk, -(-n // kern.target_chunks))


def kernel_grid(n: int, kern: Kernel) -> list[tuple[int, int]]:
    """The fixed chunk decomposition for a size-*n* run of *kern*.

    Depends only on ``(n, kernel)`` — never on the backend or worker
    count — which is what makes chunk-local floating-point arithmetic
    backend-invariant.  Layouts are memoized per ``(n, chunk)``; the
    ``parallel.grid.cache_hits`` counter tracks reuse.
    """
    if n <= 0:
        return []
    chunk = _CHUNK_OVERRIDE
    if chunk is None:
        chunk = max(kern.min_chunk, -(-n // kern.target_chunks))
    cached = _GRID_CACHE.get((n, chunk))
    if cached is None:
        if len(_GRID_CACHE) >= _GRID_CACHE_CAP:
            _GRID_CACHE.clear()
        cached = tuple(chunk_ranges(n, chunk))
        _GRID_CACHE[(n, chunk)] = cached
    elif _tm.enabled():
        _tm.incr("parallel.grid.cache_hits")
    return list(cached)


def run_kernel(
    name: str,
    n: int,
    arrays: dict[str, np.ndarray],
    *,
    backend: Backend | str | None = None,
    scalars: Mapping[str, Any] | None = None,
) -> list[Any]:
    """Run registered kernel *name* over ``range(n)`` on *backend*.

    *arrays* maps view names to numpy arrays (inputs and outputs alike);
    *scalars* adds plain values to the views.  Output arrays are written
    in place; the list of per-chunk return values comes back in grid
    order.  Dispatch:

    * a backend with ``supports_kernels`` (the shared-memory pool) ships
      ``(kernel name, segment bindings, range)`` tasks to its persistent
      workers — zero array traffic;
    * a ``shares_memory`` backend (serial/threads) runs the kernel
      in-process, writing outputs directly;
    * anything else (process-isolated workers) returns each chunk's
      output slices through its result channel and the parent
      reassembles them here.
    """
    kern = KERNELS.get(name)
    if kern is None:
        raise BackendError(f"no kernel registered under {name!r}")
    missing = [nm for nm in kern.outputs if nm not in arrays]
    if missing:
        raise BackendError(
            f"kernel {name!r} declares output(s) {missing} but no such "
            f"array binding was provided; bound arrays: "
            f"{sorted(arrays)}"
        )
    be = get_backend(backend)
    parts = kernel_grid(n, kern)
    if not parts:
        return []
    if be.supports_kernels:
        return be.run_kernel(kern, parts, arrays, dict(scalars or {}))

    fn = _native.active_fn(kern)
    views: dict[str, Any] = dict(arrays)
    if scalars:
        views.update(scalars)
    if be.shares_memory:
        return be.map_chunks(lambda lo, hi: fn(lo, hi, views), parts)

    # Process-isolated workers mutate copy-on-write pages the parent never
    # sees, so have each chunk return its output slices for reassembly.
    def isolated(lo: int, hi: int) -> tuple[Any, dict[str, np.ndarray]]:
        ret = fn(lo, hi, views)
        return ret, {nm: views[nm][lo:hi] for nm in kern.outputs}

    rets: list[Any] = []
    for payload, (lo, hi) in zip(be.map_chunks(isolated, parts), parts):
        if _faults.is_corrupted(payload):
            rets.append(payload)
            continue
        ret, slices = payload
        for nm, piece in slices.items():
            arrays[nm][lo:hi] = piece
        rets.append(ret)
    return rets


# ----------------------------------------------------------------------
# Shared numeric helpers
# ----------------------------------------------------------------------
def _reciprocal_or_one(sums: FloatArray) -> FloatArray:
    """``1/sums`` with empty (zero-sum) lines pinned to factor 1."""
    out = np.ones_like(sums)
    np.divide(1.0, sums, out=out, where=sums > 0.0)
    return out


def _segment_pick(
    out: np.ndarray,
    lo: int,
    hi: int,
    ptr: np.ndarray,
    ind_slice: np.ndarray,
    weights: np.ndarray,
    base_offset: int,
    draws: np.ndarray,
) -> None:
    """One weighted pick per segment in ``[lo, hi)`` from chunk-local data.

    *ind_slice* and *weights* cover edges ``ptr[lo]:ptr[hi]`` only;
    *base_offset* is ``ptr[lo]``.  The prefix sums are chunk-local, so the
    result depends on the chunk grid — which :func:`kernel_grid` fixes
    per ``(n, kernel)``, keeping picks backend-invariant.
    """
    if ind_slice.shape[0] == 0:
        # A chunk of nothing but empty segments: the clip below would
        # index ind_slice[-1], which does not exist.  Every pick is NIL.
        out[lo:hi] = NIL
        return
    starts = ptr[lo:hi] - base_offset
    ends = ptr[lo + 1 : hi + 1] - base_offset
    cum = np.cumsum(weights)
    prefix = np.concatenate([[0.0], cum])
    base = prefix[starts]
    totals = prefix[ends] - base
    targets = base + draws[lo:hi] * totals
    pos = np.searchsorted(cum, targets, side="left")
    # Guard against floating-point drift at segment boundaries.
    pos = np.clip(pos, starts, ends - 1)
    picked = ind_slice[pos]
    picked[totals <= 0.0] = NIL
    picked[starts == ends] = NIL
    out[lo:hi] = picked


# ----------------------------------------------------------------------
# Sinkhorn–Knopp sweeps
# ----------------------------------------------------------------------
@register_kernel("sk_sweep", outputs=("out",))
def _sk_sweep(lo: int, hi: int, v: Mapping[str, Any]) -> None:
    """One SK half-sweep for segments ``[lo, hi)``.

    Fuses the gather of the opposite-side factors with the segment sums
    (only the chunk's own edges are touched) and the reciprocal:
    ``out[i] = 1 / sum(opp[ind[ptr[i]:ptr[i+1]]])``.
    """
    ptr = v["ptr"]
    s = ptr[lo]
    w = v["opp"][v["ind"][s : ptr[hi]]]
    sums = segment_sums(w, ptr[lo : hi + 1] - s)
    v["out"][lo:hi] = _reciprocal_or_one(sums)


@register_kernel("sk_sweep_err", outputs=("out",))
def _sk_sweep_err(lo: int, hi: int, v: Mapping[str, Any]) -> float:
    """Fused SK half-sweep plus convergence error for segments ``[lo, hi)``.

    Computes the segment sums once and uses them twice: the chunk's
    column-sum error against the *current* factors ``mine`` (returned),
    and the *next* factors written to ``out``.  This halves the gather
    traffic of a measure-then-sweep iteration.
    """
    ptr = v["ptr"]
    s = ptr[lo]
    w = v["opp"][v["ind"][s : ptr[hi]]]
    sums = segment_sums(w, ptr[lo : hi + 1] - s)
    nonempty = ptr[lo + 1 : hi + 1] > ptr[lo:hi]
    if nonempty.any():
        scaled = sums[nonempty] * v["mine"][lo:hi][nonempty]
        err = float(np.abs(scaled - 1.0).max())
    else:
        err = 0.0
    v["out"][lo:hi] = _reciprocal_or_one(sums)
    return err


# ----------------------------------------------------------------------
# Scaled 1-out choice sampling
# ----------------------------------------------------------------------
@register_kernel("choice_scaled", outputs=("out",))
def _choice_scaled(lo: int, hi: int, v: Mapping[str, Any]) -> None:
    """Weighted pick per segment with weights gathered in-kernel.

    ``out[i]`` is drawn from ``ind[ptr[i]:ptr[i+1]]`` with probability
    proportional to ``opp[ind[...]]`` — the per-edge scaled values are
    never materialised globally.  ``draws[i]`` in ``(0, 1]`` supplies the
    randomness (generated once in the parent, so the random stream is
    consumed identically on every backend).
    """
    ptr = v["ptr"]
    s = ptr[lo]
    ind_slice = v["ind"][s : ptr[hi]]
    _segment_pick(
        v["out"], lo, hi, ptr, ind_slice, v["opp"][ind_slice], s, v["draws"]
    )


@register_kernel("choice_flat", outputs=("out",))
def _choice_flat(lo: int, hi: int, v: Mapping[str, Any]) -> None:
    """Weighted pick per segment from pre-gathered per-edge *weights*.

    The ensemble runner gathers the scaled values once and reuses them
    across repetitions; generic CSR-like structures (e.g. the undirected
    reduction) use this variant too.
    """
    ptr = v["ptr"]
    s = ptr[lo]
    e = ptr[hi]
    _segment_pick(
        v["out"], lo, hi, ptr, v["ind"][s:e], v["weights"][s:e], s,
        v["draws"],
    )


# ----------------------------------------------------------------------
# KarpSipserMT phase scans
# ----------------------------------------------------------------------
@register_kernel("ks_phase1_scan", outputs=("cand",))
def _ks_phase1_scan(lo: int, hi: int, v: Mapping[str, Any]) -> None:
    """Mark this range's usable out-one vertices into ``cand[lo:hi]``.

    A vertex is a candidate when it is alive, nothing unmatched points at
    it, it is unmatched, and its chosen target is unmatched.  Reads are
    scattered (``match`` at the targets) but writes stay in the slice, so
    rounds are race-free; the commit (conflict scatter, in-count
    decrements) happens in the parent between rounds.
    """
    cand = v["cand"]
    cand[lo:hi] = False
    match = v["match"]
    idx = np.flatnonzero(
        v["alive"][lo:hi]
        & (v["in_count"][lo:hi] == 0)
        & (match[lo:hi] == NIL)
    )
    if idx.size:
        idx = idx + lo
        idx = idx[match[v["choice"][idx]] == NIL]
        cand[idx] = True


# ----------------------------------------------------------------------
# Auction bidding sweep
# ----------------------------------------------------------------------

#: Sentinel bid target meaning "this row certifies it cannot be matched":
#: every neighbour's price is at or above the round's dead level.
AUCTION_DROP: int = -2

# The native loops bake the sentinels in as compile-time constants; a
# drift between the two definitions would corrupt silently, so refuse to
# import instead.
if _native.AUCTION_DROP != AUCTION_DROP or _native.NIL != NIL:
    raise BackendError(
        "repro.parallel.native sentinel constants diverge from the "
        "canonical NIL/AUCTION_DROP definitions"
    )


def _segment_min2(
    values: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-segment ``(min, argmin position, second min)`` over *values*.

    Segments are ``values[starts[i]:ends[i]]`` with CSR-style boundaries
    (``ends[i] == starts[i+1]``).  Ties resolve to the *first* occurrence
    in segment order, which is what makes the auction's bid targets
    deterministic.  Empty segments yield ``(inf, -1, inf)``; a segment
    with a single finite entry yields ``second == inf``.  Built on
    ``np.minimum.reduceat`` with the same empty-segment care as
    :func:`~repro.parallel.reduction.segment_sums`.
    """
    nseg = starts.shape[0]
    minv = np.full(nseg, np.inf)
    argp = np.full(nseg, -1, dtype=np.int64)
    secv = np.full(nseg, np.inf)
    if nseg == 0 or values.shape[0] == 0:
        return minv, argp, secv
    nonempty = ends > starts
    if not nonempty.any():
        return minv, argp, secv
    st = starts[nonempty]
    minv[nonempty] = np.minimum.reduceat(values, st)
    # First position attaining the segment minimum (inf == inf is fine).
    seg_of = np.repeat(np.arange(nseg, dtype=np.int64), ends - starts)
    pos = np.arange(values.shape[0], dtype=np.int64)
    cand = np.where(values == minv[seg_of], pos, values.shape[0])
    argp[nonempty] = np.minimum.reduceat(cand, st)
    # Second minimum: mask out the argmin entry and reduce again.
    masked = values.copy()
    masked[argp[nonempty]] = np.inf
    secv[nonempty] = np.minimum.reduceat(masked, st)
    return minv, argp, secv


@register_kernel("auction_bid", outputs=("bid_col", "bid_val"))
def _auction_bid(lo: int, hi: int, v: Mapping[str, Any]) -> None:
    """One synchronous bidding sweep over free rows ``[lo, hi)``.

    The views describe a *sub-CSR* over the currently free rows (``ptr``,
    ``ind``) plus the global column ``prices``.  For each free row the
    kernel finds the cheapest and second-cheapest *alive* neighbour
    (price below the scalar ``dead`` level) and writes

    * ``bid_col[i]`` — the cheapest alive column, or :data:`AUCTION_DROP`
      when every neighbour is dead (the row is certifiably unmatchable
      under the gap/cap argument — see ``matching/exact/auction.py``);
    * ``bid_val[i]`` — ``second_cheapest + eps`` (or ``cheapest + eps``
      when only one neighbour is alive), the price the column will carry
      if this bid wins.

    Reads are gathers over the whole price vector; writes stay in the
    ``[lo, hi)`` slice, and ties break to the lowest CSR position, so the
    sweep is bitwise identical across backends on the fixed chunk grid.
    """
    ptr = v["ptr"]
    s = ptr[lo]
    ind = v["ind"][s : ptr[hi]]
    pr = v["prices"][ind]
    pr = np.where(pr >= v["dead"], np.inf, pr)
    starts = ptr[lo:hi] - s
    ends = ptr[lo + 1 : hi + 1] - s
    minv, argp, secv = _segment_min2(pr, starts, ends)
    ok = np.isfinite(minv)
    col = np.full(hi - lo, AUCTION_DROP, dtype=np.int64)
    val = np.zeros(hi - lo, dtype=np.float64)
    if ok.any():
        col[ok] = ind[argp[ok]]
        base = np.where(np.isfinite(secv), secv, minv)
        val[ok] = base[ok] + v["eps"]
    v["bid_col"][lo:hi] = col
    v["bid_val"][lo:hi] = val


@register_kernel("ks_phase2_scan", outputs=("ok",))
def _ks_phase2_scan(lo: int, hi: int, v: Mapping[str, Any]) -> None:
    """Mark residual columns ``[lo, hi)`` whose choice edge is matchable.

    Phase 2 of Algorithm 4: after Phase 1 the column-choice edges of the
    residual graph form a maximum matching of it (Lemma 3), so the scan
    is conflict-free on valid inputs.  Column ``j`` is unified vertex
    ``nrows + j``.
    """
    nrows = v["nrows"]
    match = v["match"]
    u = np.arange(nrows + lo, nrows + hi, dtype=np.int64)
    t = v["choice"][u]
    m = (t != NIL) & (match[u] == NIL)
    m[m] &= match[t[m]] == NIL
    v["ok"][lo:hi] = m
