"""Real execution backends for data-parallel kernels.

Three backends share one tiny interface, :class:`Backend`: map a function
over contiguous index ranges and return the per-range results in partition
order.

* :class:`SerialBackend` — reference implementation, zero overhead.
* :class:`ThreadBackend` — a ``ThreadPoolExecutor``.  Python's GIL would
  serialise pure-Python bodies, but the kernels this library parallelises
  are numpy segment reductions and gathers, which release the GIL inside
  numpy; on multi-core hosts this yields real concurrency.
* :class:`ProcessBackend` — forks one child per range, per call.  The
  kernel function is *inherited through the fork* (closures over large
  arrays work and are not copied through pickling); only the per-range
  **return values** travel back through a pipe, so kernels must return
  their results rather than write into shared output arrays.  It is the
  honest demonstration backend for CPU-bound pure-Python work, not the
  fast path.

When telemetry is enabled (:mod:`repro.telemetry`), every ``map_ranges``
call records per-chunk wall times into the ``parallel.<label>.chunk``
timer and a load-imbalance gauge ``parallel.<label>.imbalance`` (max chunk
time over mean chunk time — 1.0 is a perfectly balanced call).  When
telemetry is disabled the only cost is one boolean check per call.

Fault injection (:mod:`repro.resilience.faults`) hooks in at the same
altitude: each ``map_ranges`` call checks for an installed
:class:`~repro.resilience.FaultPlan` — a single ``is None`` test in
production — and, when one is active, wraps the kernel so matching
crash/hang/slow/corrupt rules fire on the addressed chunks.  Recovery
(deadlines, retries, chunk re-execution) is layered on top by
:class:`~repro.resilience.ResilientBackend`.

The *scalability claims* of the paper are reproduced with the machine cost
model (:mod:`repro.parallel.machine`); these backends exist so that every
parallel algorithm in the library can also genuinely execute in parallel,
and so tests can check backend-independence of results.
"""

from __future__ import annotations

import abc
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro import telemetry as _tm
from repro.errors import BackendError, WorkerCrashError
from repro.parallel.partition import static_partition
from repro.resilience import faults as _faults

__all__ = [
    "Backend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "default_worker_count",
    "get_backend",
]

RangeFn = Callable[[int, int], Any]
Parts = Sequence[tuple[int, int]]


def default_worker_count() -> int:
    """Worker count honouring CPU affinity masks.

    CPU-pinned containers and CI runners often expose many cores through
    ``os.cpu_count()`` while the process is only allowed to run on a few;
    sizing pools by the raw count oversubscribes the allowed CPUs.  Use the
    affinity mask where the platform has one, the plain count elsewhere.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _record_chunks(label: str, durations: Sequence[float]) -> None:
    """Feed one call's per-chunk wall times into the telemetry registry."""
    if not durations:
        return
    timer = _tm.get_registry().timer(f"parallel.{label}.chunk")
    for dt in durations:
        timer.observe(dt)
    _tm.incr(f"parallel.{label}.calls")
    mean = sum(durations) / len(durations)
    if mean > 0.0:
        _tm.set_gauge(
            f"parallel.{label}.imbalance", max(durations) / mean
        )


def _faulty_range_fn(
    fn: RangeFn, plan: "_faults.FaultPlan", label: str, parts: Parts,
    in_child: bool,
) -> RangeFn:
    """Bind one call's fault draws (made now, in the parent) onto *fn*."""
    specs = plan.plan_call(label, len(parts))
    by_range = {part: spec for part, spec in zip(parts, specs)}

    def faulty(lo: int, hi: int) -> Any:
        return _faults.execute_with_fault(
            by_range.get((lo, hi)), fn, lo, hi, in_child=in_child
        )

    return faulty


class Backend(abc.ABC):
    """Maps ``fn(lo, hi)`` over a partition of ``range(n)``."""

    #: Number of workers the backend schedules onto.
    n_workers: int = 1
    #: Short name used in telemetry metric paths and fault addressing.
    label: str = "backend"
    #: Whether workers see (and may write) the caller's arrays directly.
    #: False for process-isolated backends, whose kernels must *return*
    #: results instead of mutating closed-over arrays.
    shares_memory: bool = True
    #: Whether the backend executes registered kernels natively over
    #: published shared-memory segments (see :mod:`repro.parallel.kernels`).
    supports_kernels: bool = False
    #: Whether injected faults run inside a forked child (crash = exit).
    _faults_in_child: bool = False

    def partition(self, n: int) -> list[tuple[int, int]]:
        """The static chunk decomposition a ``map_ranges(fn, n)`` call uses
        (one near-equal contiguous range per worker)."""
        return static_partition(n, self.n_workers) if n > 0 else []

    def map_ranges(self, fn: RangeFn, n: int) -> list[Any]:
        """Call ``fn`` on each range of a static partition of ``range(n)``
        and return the per-range results in partition order."""
        return self.map_chunks(fn, self.partition(n))

    def map_chunks(self, fn: RangeFn, parts: Parts) -> list[Any]:
        """Call ``fn`` on each given ``(lo, hi)`` range and return per-range
        results in order.  Same fault-injection and telemetry altitude as
        :meth:`map_ranges`, but the caller supplies the chunk grid — this is
        how the kernel layer runs one *fixed* decomposition (independent of
        worker count) on every backend."""
        plan = _faults.active_plan()
        if plan is not None:
            fn = _faulty_range_fn(
                fn, plan, self.label, parts, self._faults_in_child
            )
        if not _tm.enabled():
            return self._map_ranges(fn, parts)
        durations: list[float] = []

        def timed(lo: int, hi: int) -> Any:
            t0 = time.perf_counter()
            try:
                return fn(lo, hi)
            finally:
                # list.append is atomic under the GIL, so concurrent
                # worker threads can share this list safely.
                durations.append(time.perf_counter() - t0)

        try:
            return self._map_ranges(timed, parts)
        finally:
            _record_chunks(self.label, durations)

    @abc.abstractmethod
    def _map_ranges(self, fn: RangeFn, parts: Parts) -> list[Any]:
        """Backend-specific execution of the partitioned map."""

    def close(self) -> None:
        """Release worker resources (no-op by default)."""

    def drain(self, timeout: float | None = None) -> bool:
        """Finish in-flight work, then release resources.

        The in-process backends have no asynchronous in-flight state —
        every map call returns before its caller does — so the default is
        simply :meth:`close`.  Pool backends override this to let queued
        chunks complete before the pool stops.  Returns ``True`` when the
        backend drained (and closed) within *timeout*.
        """
        self.close()
        return True

    def healthy(self) -> bool:
        """Liveness probe: ``False`` once workers are known dead.

        In-process backends are healthy by definition; pool backends
        override this to report worker liveness without touching the
        work queues.
        """
        return True

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SerialBackend(Backend):
    """Run everything inline on the calling thread."""

    n_workers = 1
    label = "serial"

    def _map_ranges(self, fn: RangeFn, parts: Parts) -> list[Any]:
        return [fn(lo, hi) for lo, hi in parts]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialBackend()"


class ThreadBackend(Backend):
    """Thread-pool backend (effective for GIL-releasing numpy kernels)."""

    label = "threads"

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = default_worker_count() if n_workers is None else n_workers
        if self.n_workers < 1:
            raise BackendError(f"n_workers must be >= 1, got {self.n_workers}")
        self._pool = ThreadPoolExecutor(max_workers=self.n_workers)

    def _map_ranges(self, fn: RangeFn, parts: Parts) -> list[Any]:
        futures = [self._pool.submit(fn, lo, hi) for lo, hi in parts]
        return [f.result() for f in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadBackend(n_workers={self.n_workers})"


def _child_range(fn: RangeFn, lo: int, hi: int, conn) -> None:
    """Run one range in a forked child and ship ``(ok, dt, result)`` back."""
    t0 = time.perf_counter()
    try:
        result = fn(lo, hi)
        ok = True
    except BaseException as exc:  # noqa: BLE001 - report to the parent
        result = exc
        ok = False
    dt = time.perf_counter() - t0
    try:
        conn.send((ok, dt, result))
    except Exception as exc:  # result (or exception) not picklable
        try:
            conn.send(
                (False, dt, BackendError(f"could not return result: {exc}"))
            )
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


class ProcessBackend(Backend):
    """Fork-per-call process backend.

    Each ``map_ranges`` call forks one child per range: the kernel and its
    closed-over arrays are inherited by the fork (no pickling of the
    function, no argument copies), and only the per-range return value is
    pickled back through a pipe.  Side effects the kernel makes on arrays
    happen in the child's copy-on-write memory and are *not* visible to
    the parent — kernels must return their results, which is the library
    convention (see :mod:`repro.parallel.reduction`).

    A child that dies before writing its result (crash, ``os._exit``,
    signal) surfaces as a :class:`~repro.errors.WorkerCrashError` naming
    the chunk range and the exit status — never a raw ``EOFError``.
    """

    label = "processes"
    shares_memory = False
    _faults_in_child = True

    def __init__(self, n_workers: int | None = None) -> None:
        import multiprocessing as mp

        self.n_workers = default_worker_count() if n_workers is None else n_workers
        if self.n_workers < 1:
            raise BackendError(f"n_workers must be >= 1, got {self.n_workers}")
        try:
            self._ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX
            raise BackendError("ProcessBackend requires fork support") from exc

    def map_chunks(self, fn: RangeFn, parts: Parts) -> list[Any]:
        plan = _faults.active_plan()
        if plan is not None:
            fn = _faulty_range_fn(fn, plan, self.label, parts, in_child=True)
        record = _tm.enabled()
        pairs = self._run(fn, parts)
        if record:
            _record_chunks(self.label, [dt for _, dt in pairs])
        return [result for result, _ in pairs]

    def _map_ranges(self, fn: RangeFn, parts: Parts) -> list[Any]:
        return [result for result, _ in self._run(fn, parts)]

    def _run(self, fn: RangeFn, parts: Parts) -> list[tuple[Any, float]]:
        if not parts:
            return []
        procs = []
        conns = []
        for lo, hi in parts:
            recv, send = self._ctx.Pipe(duplex=False)
            proc = self._ctx.Process(
                target=_child_range, args=(fn, lo, hi, send)
            )
            proc.start()
            send.close()
            procs.append(proc)
            conns.append(recv)
        out: list[tuple[Any, float]] = []
        failure: BaseException | None = None
        for proc, conn, (lo, hi) in zip(procs, conns, parts):
            try:
                ok, dt, payload = conn.recv()
            except EOFError:
                # The child died before sending anything; join it to
                # collect the exit status for the diagnostic.
                proc.join()
                ok, dt, payload = False, 0.0, WorkerCrashError(
                    f"worker for range [{lo}, {hi}) exited with status "
                    f"{proc.exitcode} before returning a result"
                )
            conn.close()
            proc.join()
            if ok:
                out.append((payload, dt))
            elif failure is None:
                failure = (
                    payload
                    if isinstance(payload, BaseException)
                    else BackendError(str(payload))
                )
        if failure is not None:
            raise failure
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessBackend(n_workers={self.n_workers})"


def get_backend(spec: "Backend | str | None") -> Backend:
    """Resolve a backend specification.

    Accepts an existing :class:`Backend`, ``None`` (serial), or a string:
    ``"serial"``, ``"threads"``, ``"threads:4"``, ``"processes"``,
    ``"processes:2"``, ``"shm"``, ``"shm:4"`` (persistent zero-copy worker
    pool, :class:`~repro.parallel.shm.SharedMemoryBackend`), or
    ``"resilient:<inner spec>"`` (e.g. ``"resilient:threads:4"``) for a
    default-configured :class:`~repro.resilience.ResilientBackend` wrapper.
    """
    if spec is None:
        return SerialBackend()
    if isinstance(spec, Backend):
        return spec
    if not isinstance(spec, str):
        raise BackendError(f"cannot interpret backend spec {spec!r}")
    name, _, count = spec.partition(":")
    if name == "resilient":
        from repro.resilience.resilient import ResilientBackend

        return ResilientBackend(get_backend(count or None))
    workers = int(count) if count else None
    if name == "serial":
        return SerialBackend()
    if name == "threads":
        return ThreadBackend(workers)
    if name == "processes":
        return ProcessBackend(workers)
    if name == "shm":
        from repro.parallel.shm import SharedMemoryBackend

        return SharedMemoryBackend(workers)
    raise BackendError(f"unknown backend {name!r}")
