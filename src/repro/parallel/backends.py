"""Real execution backends for data-parallel kernels.

Three backends share one tiny interface, :class:`Backend`: map a function
over contiguous index ranges.

* :class:`SerialBackend` — reference implementation, zero overhead.
* :class:`ThreadBackend` — a ``ThreadPoolExecutor``.  Python's GIL would
  serialise pure-Python bodies, but the kernels this library parallelises
  are numpy segment reductions and gathers, which release the GIL inside
  numpy; on multi-core hosts this yields real concurrency.
* :class:`ProcessBackend` — fork-based process pool for fully GIL-free
  execution.  Arguments are pickled, so it pays a copy per call; it is the
  honest demonstration backend for CPU-bound pure-Python work, not the
  fast path.

The *scalability claims* of the paper are reproduced with the machine cost
model (:mod:`repro.parallel.machine`); these backends exist so that every
parallel algorithm in the library can also genuinely execute in parallel,
and so tests can check backend-independence of results.
"""

from __future__ import annotations

import abc
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.errors import BackendError
from repro.parallel.partition import static_partition

__all__ = [
    "Backend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "get_backend",
]

RangeFn = Callable[[int, int], Any]


class Backend(abc.ABC):
    """Maps ``fn(lo, hi)`` over a partition of ``range(n)``."""

    #: Number of workers the backend schedules onto.
    n_workers: int = 1

    @abc.abstractmethod
    def map_ranges(self, fn: RangeFn, n: int) -> list[Any]:
        """Call ``fn`` on each range of a static partition of ``range(n)``
        and return the per-range results in partition order."""

    def close(self) -> None:
        """Release worker resources (no-op by default)."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SerialBackend(Backend):
    """Run everything inline on the calling thread."""

    n_workers = 1

    def map_ranges(self, fn: RangeFn, n: int) -> list[Any]:
        return [fn(0, n)] if n > 0 else []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialBackend()"


class ThreadBackend(Backend):
    """Thread-pool backend (effective for GIL-releasing numpy kernels)."""

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = (os.cpu_count() or 1) if n_workers is None else n_workers
        if self.n_workers < 1:
            raise BackendError(f"n_workers must be >= 1, got {self.n_workers}")
        self._pool = ThreadPoolExecutor(max_workers=self.n_workers)

    def map_ranges(self, fn: RangeFn, n: int) -> list[Any]:
        parts = static_partition(n, self.n_workers)
        futures = [self._pool.submit(fn, lo, hi) for lo, hi in parts]
        return [f.result() for f in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadBackend(n_workers={self.n_workers})"


class ProcessBackend(Backend):
    """Fork-based process pool backend.

    ``fn`` and its results must be picklable; closures over large arrays
    are copied to the children.  Intended for demonstrations and tests of
    GIL-free execution, not as the performance path.
    """

    def __init__(self, n_workers: int | None = None) -> None:
        import multiprocessing as mp

        self.n_workers = (os.cpu_count() or 1) if n_workers is None else n_workers
        if self.n_workers < 1:
            raise BackendError(f"n_workers must be >= 1, got {self.n_workers}")
        try:
            ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX
            raise BackendError("ProcessBackend requires fork support") from exc
        self._pool = ctx.Pool(processes=self.n_workers)

    def map_ranges(self, fn: RangeFn, n: int) -> list[Any]:
        parts = static_partition(n, self.n_workers)
        return self._pool.starmap(fn, parts)

    def close(self) -> None:
        self._pool.terminate()
        self._pool.join()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessBackend(n_workers={self.n_workers})"


def get_backend(spec: "Backend | str | None") -> Backend:
    """Resolve a backend specification.

    Accepts an existing :class:`Backend`, ``None`` (serial), or a string:
    ``"serial"``, ``"threads"``, ``"threads:4"``, ``"processes"``,
    ``"processes:2"``.
    """
    if spec is None:
        return SerialBackend()
    if isinstance(spec, Backend):
        return spec
    if not isinstance(spec, str):
        raise BackendError(f"cannot interpret backend spec {spec!r}")
    name, _, count = spec.partition(":")
    workers = int(count) if count else None
    if name == "serial":
        return SerialBackend()
    if name == "threads":
        return ThreadBackend(workers)
    if name == "processes":
        return ProcessBackend(workers)
    raise BackendError(f"unknown backend {name!r}")
