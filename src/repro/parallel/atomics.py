"""Atomic operations over shared integer arrays.

These model the three gcc built-ins Algorithm 4 (``KarpSipserMT``) relies
on:

* ``_Add(memory, value)``                → :meth:`AtomicArray.add`
* ``_CompAndSwap(memory, old, new)``     → :meth:`AtomicArray.compare_and_swap`
* ``_AddAndFetch(memory, value)``        → :meth:`AtomicArray.add_and_fetch`

Two execution contexts use them:

* Inside the :mod:`repro.parallel.simthread` simulator, each call is a
  single simulator step, so it is atomic by construction and may be
  interleaved arbitrarily with other threads' steps.
* Under real ``threading`` backends, an optional striped-lock mode makes
  each call genuinely atomic (CPython has no CAS primitive; per-stripe
  locks are the honest translation).
"""

from __future__ import annotations

import threading

import numpy as np

from repro._typing import IndexArray

__all__ = ["AtomicArray"]


class AtomicArray:
    """An int64 array with atomic read/write/CAS/fetch-add operations.

    Parameters
    ----------
    data:
        Initial contents (copied into a fresh int64 array) or an int size.
    locking:
        ``False`` (default) for use inside the simulator, where atomicity
        comes from the step semantics; ``True`` to guard every operation
        with one of ``n_stripes`` locks for use under real threads.
    """

    __slots__ = ("values", "_locks", "_n_stripes")

    def __init__(
        self,
        data: int | IndexArray | list[int],
        *,
        locking: bool = False,
        n_stripes: int = 64,
    ) -> None:
        if isinstance(data, int):
            self.values = np.zeros(data, dtype=np.int64)
        else:
            self.values = np.array(data, dtype=np.int64)
        if locking:
            self._n_stripes = max(1, n_stripes)
            self._locks: list[threading.Lock] | None = [
                threading.Lock() for _ in range(self._n_stripes)
            ]
        else:
            self._n_stripes = 0
            self._locks = None

    def _lock_for(self, index: int):
        assert self._locks is not None
        return self._locks[index % self._n_stripes]

    def __len__(self) -> int:
        return int(self.values.shape[0])

    # ------------------------------------------------------------------
    def load(self, index: int) -> int:
        """Atomic read."""
        if self._locks is None:
            return int(self.values[index])
        with self._lock_for(index):
            return int(self.values[index])

    def store(self, index: int, value: int) -> None:
        """Atomic write."""
        if self._locks is None:
            self.values[index] = value
            return
        with self._lock_for(index):
            self.values[index] = value

    def add(self, index: int, value: int) -> None:
        """The paper's ``_Add``: atomic ``memory += value``."""
        if self._locks is None:
            self.values[index] += value
            return
        with self._lock_for(index):
            self.values[index] += value

    def add_and_fetch(self, index: int, value: int) -> int:
        """The paper's ``_AddAndFetch``: atomic add returning the *new*
        content."""
        if self._locks is None:
            self.values[index] += value
            return int(self.values[index])
        with self._lock_for(index):
            self.values[index] += value
            return int(self.values[index])

    def compare_and_swap(self, index: int, expected: int, replace: int) -> int:
        """The paper's ``_CompAndSwap``: if the cell equals *expected*,
        store *replace*.  Returns the **final** content of the cell (so a
        successful swap returns *replace*, matching the paper's use
        ``_CompAndSwap(match[nbr], NIL, curr) = curr`` as success test)."""
        if self._locks is None:
            if self.values[index] == expected:
                self.values[index] = replace
            return int(self.values[index])
        with self._lock_for(index):
            if self.values[index] == expected:
                self.values[index] = replace
            return int(self.values[index])
