"""Index-range partitioning, mirroring OpenMP loop schedules.

The paper runs its loops with ``schedule(dynamic,512)`` (and ``guided`` for
``KarpSipserMT``); these helpers produce the same chunk decompositions for
both the real backends and the machine cost model.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry as _tm
from repro.errors import ScheduleError

__all__ = ["chunk_ranges", "static_partition", "guided_chunks"]


def chunk_ranges(n: int, chunk: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into consecutive ``[lo, hi)`` chunks of size *chunk*
    (the last one may be shorter) — OpenMP ``dynamic,chunk`` units."""
    if chunk <= 0:
        raise ScheduleError(f"chunk must be positive, got {chunk}")
    return [(lo, min(lo + chunk, n)) for lo in range(0, n, chunk)]


#: Memoized static layouts keyed by ``(n, parts)`` — ``map_ranges``
#: re-derives the same split on every call of a hot loop (SK sweeps,
#: segment reductions), and the result is pure in the key.  Bounded:
#: a process works with a handful of (size, worker-count) pairs.
_PARTITION_CACHE: dict[tuple[int, int], tuple[tuple[int, int], ...]] = {}
_PARTITION_CACHE_CAP = 256


def static_partition(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into *parts* near-equal consecutive ranges —
    OpenMP ``static`` schedule.  Layouts are memoized per ``(n, parts)``;
    reuse shows up on the ``parallel.grid.cache_hits`` counter."""
    if parts <= 0:
        raise ScheduleError(f"parts must be positive, got {parts}")
    cached = _PARTITION_CACHE.get((n, parts))
    if cached is None:
        bounds = np.linspace(0, n, parts + 1).astype(np.int64)
        cached = tuple(
            (int(bounds[p]), int(bounds[p + 1]))
            for p in range(parts)
            if bounds[p + 1] > bounds[p]
        )
        if len(_PARTITION_CACHE) >= _PARTITION_CACHE_CAP:
            _PARTITION_CACHE.clear()
        _PARTITION_CACHE[(n, parts)] = cached
    elif _tm.enabled():
        _tm.incr("parallel.grid.cache_hits")
    return list(cached)


def guided_chunks(n: int, workers: int, min_chunk: int = 1) -> list[tuple[int, int]]:
    """OpenMP ``guided`` chunk sequence: each next chunk is
    ``remaining / workers``, floored at *min_chunk*."""
    if workers <= 0:
        raise ScheduleError(f"workers must be positive, got {workers}")
    if min_chunk <= 0:
        raise ScheduleError(f"min_chunk must be positive, got {min_chunk}")
    out: list[tuple[int, int]] = []
    lo = 0
    while lo < n:
        size = max(min_chunk, (n - lo) // workers)
        hi = min(n, lo + size)
        out.append((lo, hi))
        lo = hi
    return out
