"""Index-range partitioning, mirroring OpenMP loop schedules.

The paper runs its loops with ``schedule(dynamic,512)`` (and ``guided`` for
``KarpSipserMT``); these helpers produce the same chunk decompositions for
both the real backends and the machine cost model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ScheduleError

__all__ = ["chunk_ranges", "static_partition", "guided_chunks"]


def chunk_ranges(n: int, chunk: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into consecutive ``[lo, hi)`` chunks of size *chunk*
    (the last one may be shorter) — OpenMP ``dynamic,chunk`` units."""
    if chunk <= 0:
        raise ScheduleError(f"chunk must be positive, got {chunk}")
    return [(lo, min(lo + chunk, n)) for lo in range(0, n, chunk)]


def static_partition(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into *parts* near-equal consecutive ranges —
    OpenMP ``static`` schedule."""
    if parts <= 0:
        raise ScheduleError(f"parts must be positive, got {parts}")
    bounds = np.linspace(0, n, parts + 1).astype(np.int64)
    return [
        (int(bounds[p]), int(bounds[p + 1]))
        for p in range(parts)
        if bounds[p + 1] > bounds[p]
    ]


def guided_chunks(n: int, workers: int, min_chunk: int = 1) -> list[tuple[int, int]]:
    """OpenMP ``guided`` chunk sequence: each next chunk is
    ``remaining / workers``, floored at *min_chunk*."""
    if workers <= 0:
        raise ScheduleError(f"workers must be positive, got {workers}")
    if min_chunk <= 0:
        raise ScheduleError(f"min_chunk must be positive, got {min_chunk}")
    out: list[tuple[int, int]] = []
    lo = 0
    while lo < n:
        size = max(min_chunk, (n - lo) // workers)
        hi = min(n, lo + size)
        out.append((lo, hi))
        lo = hi
    return out
