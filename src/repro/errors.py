"""Exception hierarchy for :mod:`repro`.

All exceptions raised by the library derive from :class:`ReproError`, so a
caller can wrap any public entry point in ``except ReproError``.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphStructureError",
    "ShapeError",
    "ScalingError",
    "ConvergenceWarning",
    "MatchingError",
    "ValidationError",
    "BackendError",
    "ScheduleError",
    "ExperimentError",
    "TelemetryError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphStructureError(ReproError):
    """The graph/matrix data is structurally invalid (bad indices, duplicate
    entries, unsorted adjacency, inconsistent CSR/CSC mirrors, ...)."""


class ShapeError(GraphStructureError):
    """Array arguments have incompatible or unexpected shapes."""


class ScalingError(ReproError):
    """A scaling algorithm cannot proceed (e.g. an empty row/column when the
    caller demanded strict doubly stochastic convergence)."""


class ConvergenceWarning(UserWarning):
    """A scaling algorithm stopped before reaching the requested tolerance.

    This is a warning rather than an error: the paper (Section 3.3) makes a
    point of the heuristics remaining useful with only a few iterations of
    scaling, long before convergence.
    """


class MatchingError(ReproError):
    """A matching routine received invalid input or reached an invalid state."""


class ValidationError(MatchingError):
    """A matching failed validation (vertex matched twice, non-edge used, ...)."""


class BackendError(ReproError):
    """A parallel backend was misconfigured or failed to execute."""


class ScheduleError(BackendError):
    """A simulated-thread schedule is invalid (unknown policy, bad seed, ...)."""


class ExperimentError(ReproError):
    """An experiment id is unknown or its parameters are invalid."""


class TelemetryError(ReproError):
    """Telemetry misuse (e.g. re-registering a metric under another kind)."""
