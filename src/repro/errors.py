"""Exception hierarchy for :mod:`repro`.

All exceptions raised by the library derive from :class:`ReproError`, so a
caller can wrap any public entry point in ``except ReproError``.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphStructureError",
    "ShapeError",
    "ScalingError",
    "ConvergenceWarning",
    "MatchingError",
    "ValidationError",
    "BackendError",
    "ScheduleError",
    "WorkerCrashError",
    "DeadlineExceededError",
    "ResultCorruptionError",
    "RetryExhaustedError",
    "ServiceError",
    "StreamError",
    "RecoveryError",
    "OverloadedError",
    "CircuitOpenError",
    "ServerClosedError",
    "TransportError",
    "PartitionedError",
    "QuotaExceededError",
    "ShardError",
    "ExperimentError",
    "TelemetryError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphStructureError(ReproError):
    """The graph/matrix data is structurally invalid (bad indices, duplicate
    entries, unsorted adjacency, inconsistent CSR/CSC mirrors, ...)."""


class ShapeError(GraphStructureError):
    """Array arguments have incompatible or unexpected shapes."""


class ScalingError(ReproError):
    """A scaling algorithm cannot proceed (e.g. an empty row/column when the
    caller demanded strict doubly stochastic convergence)."""


class ConvergenceWarning(UserWarning):
    """A scaling algorithm stopped before reaching the requested tolerance.

    This is a warning rather than an error: the paper (Section 3.3) makes a
    point of the heuristics remaining useful with only a few iterations of
    scaling, long before convergence.  When emitted by the degradation
    ladder the instance carries the achieved column-sum error in
    :attr:`achieved_error` and the ladder rung in :attr:`rung`.
    """

    def __init__(
        self,
        message: str,
        *,
        achieved_error: float | None = None,
        rung: str | None = None,
    ) -> None:
        super().__init__(message)
        #: Column-sum error at the point the algorithm stopped (or None).
        self.achieved_error = achieved_error
        #: Degradation-ladder rung that produced the result (or None).
        self.rung = rung


class MatchingError(ReproError):
    """A matching routine received invalid input or reached an invalid state."""


class ValidationError(MatchingError):
    """A matching failed validation (vertex matched twice, non-edge used, ...)."""


class BackendError(ReproError):
    """A parallel backend was misconfigured or failed to execute."""


class ScheduleError(BackendError):
    """A simulated-thread schedule is invalid (unknown policy, bad seed, ...)."""


class WorkerCrashError(BackendError):
    """A backend worker died before returning its chunk's result.

    Raised when a forked child exits (or is killed) without writing to its
    result pipe, or when an injected crash fault fires on an in-process
    worker.  The message names the chunk range and, for processes, the exit
    code.
    """


class DeadlineExceededError(BackendError):
    """A chunk did not complete within the configured per-call deadline.

    :class:`~repro.resilience.ResilientBackend` kills expired child
    processes outright; hung threads cannot be killed in CPython and are
    abandoned (they finish in the background), but the call still returns
    or raises within the deadline budget.
    """


class ResultCorruptionError(BackendError):
    """A chunk returned a payload that failed the integrity check.

    Models a checksum mismatch on the result channel; fault injection
    produces such payloads with the ``corrupt`` fault kind.
    """


class RetryExhaustedError(BackendError):
    """All retry attempts for a chunk failed.

    The final underlying failure (crash, deadline, corruption) is chained
    as ``__cause__``.
    """


class ServiceError(ReproError):
    """Base class for matching-service rejections (:mod:`repro.serve`).

    Every way the server declines or abandons a request is a subclass of
    this (or of :class:`BackendError` for execution failures), so a
    client can always distinguish "the service protected itself" from
    "your request was wrong".
    """


class StreamError(ReproError):
    """A streaming operation is invalid (stale epoch, unknown or
    exhausted stream handle, ...).  See :mod:`repro.stream`."""


class RecoveryError(ServiceError):
    """Crash recovery could not restore a consistent, verified state.

    Raised when the journal is corrupted beyond torn-tail truncation
    (a valid record *after* an invalid one — interleaved corruption,
    never produced by a crash mid-append), when a checkpoint fails its
    integrity check, or when a recovered session's recertified
    guarantee diverges from the last acknowledged value.  The message
    names the byte offset or stream handle; refusing to serve beats
    silently serving a weaker certificate than the one acknowledged.
    """

    def __init__(self, message: str, *, offset: int | None = None) -> None:
        super().__init__(message)
        #: Byte offset of the first invalid journal byte (or None).
        self.offset = offset


class OverloadedError(ServiceError):
    """The server shed the request because its admission queue is full.

    Load shedding is deliberate: a bounded queue plus typed rejection is
    what keeps accepted requests inside their deadline budgets under
    sustained overload.  Clients should back off and retry.
    """


class CircuitOpenError(ServiceError):
    """The server's circuit breaker is open; the request failed fast.

    Raised after consecutive worker crashes or deadline misses opened the
    breaker.  The underlying pool respawns in the background; once the
    cooldown elapses, half-open probe requests test the path and close
    the breaker again.
    """


class ServerClosedError(ServiceError):
    """The server is draining or stopped and accepts no new requests."""


class TransportError(ServiceError):
    """A network request could not be completed over the socket transport.

    Raised by :class:`~repro.serve.net.ResilientClient` after its retry
    budget is spent on transport-level failures — dropped connections,
    truncated or checksum-failed frames, response deadlines.  The final
    underlying failure is chained as ``__cause__``.  A request that
    might have been applied server-side is safe to retry verbatim: the
    client's idempotent request ids make re-application a no-op.
    """


class PartitionedError(TransportError):
    """The service is unreachable — every (re)connection attempt failed.

    The network-partition flavour of :class:`TransportError`: nothing
    was ever accepted by the far end, so no request state is ambiguous;
    the caller should back off and try again later (or try another
    replica).
    """


class QuotaExceededError(ServiceError):
    """The request was shed because its tenant's admission quota is full.

    Per-tenant quotas are enforced *before* routing (see
    :mod:`repro.serve.quota`): one tenant flooding the front cannot
    starve another tenant's admission.  Clients should back off; the
    quota frees as the tenant's in-flight requests complete.
    """


class ShardError(ReproError):
    """A shard plan cannot be built or executed as requested (bad shard
    count, per-shard memory budget unsatisfiable, tier mismatch, ...)."""


class ExperimentError(ReproError):
    """An experiment id is unknown or its parameters are invalid."""


class TelemetryError(ReproError):
    """Telemetry misuse (e.g. re-registering a metric under another kind)."""
