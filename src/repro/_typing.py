"""Shared type aliases.

Kept in a private module so public modules can share annotations without
circular imports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

import numpy as np
import numpy.typing as npt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from numpy.random import Generator

__all__ = ["IndexArray", "FloatArray", "BoolArray", "SeedLike", "rng_from"]

#: Integer index array (vertex ids, CSR pointers, ...). We standardise on
#: int64 so graphs with more than 2^31 edges are representable.
IndexArray = npt.NDArray[np.int64]

#: Double precision array (scaling vectors, probabilities, ...).
FloatArray = npt.NDArray[np.float64]

#: Boolean mask array.
BoolArray = npt.NDArray[np.bool_]

#: Anything acceptable as a seed: None, an int, or a Generator to use as-is.
SeedLike = Union[None, int, np.integer, "Generator"]

#: Sentinel for "unmatched" entries in match arrays, mirroring the paper's NIL.
NIL: int = -1


def rng_from(seed: SeedLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` gives fresh OS entropy; an int gives a deterministic stream; an
    existing Generator is passed through unchanged (so callers can share one
    stream across several calls).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
